package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// The registry published through expvar. Debug servers may come and go
// (tests start several), but expvar.Publish panics on duplicate names,
// so the package publishes one Func exactly once and swaps the pointer
// it reads.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

func publishExpvar(reg *Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("ascdg", expvar.Func(func() any {
			if r := expvarReg.Load(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})
}

// MetricsHandler serves reg as an OpenMetrics text exposition — the
// /metrics endpoint Prometheus scrapes. A nil registry serves a valid
// page carrying only build_info.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", OpenMetricsContentType)
		_ = WriteOpenMetrics(w, reg)
	})
}

// HealthzHandler is the liveness probe: the process answering at all is
// the signal, so it always returns 200.
func HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// ReadyzHandler is the readiness probe: 200 while every check in h
// passes, 503 with the failing check's error once one fails (farmd:
// draining; cdgd: queue saturated or data root unwritable), so load
// balancers route around the node.
func ReadyzHandler(h *Health) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := h.Err(); err != nil {
			http.Error(w, fmt.Sprintf("not ready: %v", err), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
}

// RegisterOps mounts the fleet operations endpoints — /metrics,
// /healthz, /readyz — on mux. cdgd mounts them next to its campaign
// API; the debug server mounts them next to /debug/.
func RegisterOps(mux *http.ServeMux, reg *Registry, h *Health) {
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/healthz", HealthzHandler())
	mux.Handle("/readyz", ReadyzHandler(h))
}

// DebugServer serves the debug HTTP endpoint:
//
//	/debug/vars     expvar (including the "ascdg" metrics snapshot)
//	/debug/metrics  the registry snapshot alone, as JSON
//	/debug/pprof/   net/http/pprof profiles (cpu, heap, goroutine, ...)
//	/metrics        OpenMetrics text exposition (Prometheus scrape)
//	/healthz        liveness probe (always 200)
//	/readyz         readiness probe (503 while a health check fails)
//
// It binds its own mux, so importing net/http/pprof's side effects on
// http.DefaultServeMux are irrelevant and nothing is exposed unless
// the operator opts in with -debug-addr.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts a debug server on addr (":0" picks a free port)
// publishing reg, with readiness answered from health (nil: always
// ready). It returns once the listener is bound; serving continues in
// the background until Close.
func ServeDebug(addr string, reg *Registry, health *Health) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	publishExpvar(reg)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	RegisterOps(mux, reg, health)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server.
func (d *DebugServer) Close() error { return d.srv.Close() }
