package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// The registry published through expvar. Debug servers may come and go
// (tests start several), but expvar.Publish panics on duplicate names,
// so the package publishes one Func exactly once and swaps the pointer
// it reads.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

func publishExpvar(reg *Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("ascdg", expvar.Func(func() any {
			if r := expvarReg.Load(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})
}

// DebugServer serves the debug HTTP endpoint:
//
//	/debug/vars     expvar (including the "ascdg" metrics snapshot)
//	/debug/metrics  the registry snapshot alone, as JSON
//	/debug/pprof/   net/http/pprof profiles (cpu, heap, goroutine, ...)
//
// It binds its own mux, so importing net/http/pprof's side effects on
// http.DefaultServeMux are irrelevant and nothing is exposed unless
// the operator opts in with -debug-addr.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts a debug server on addr (":0" picks a free port)
// publishing reg. It returns once the listener is bound; serving
// continues in the background until Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	publishExpvar(reg)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server.
func (d *DebugServer) Close() error { return d.srv.Close() }
