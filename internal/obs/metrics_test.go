package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value = %d, want 5", got)
	}
	if again := r.Counter("c"); again != c {
		t.Fatalf("second lookup returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge value = %d, want 4", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", SizeBounds())
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil handles")
	}
	// None of these may panic.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(-1)
	h.Observe(10)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("nil handles must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot must be empty")
	}
	if r.Format() != "" {
		t.Fatalf("nil registry Format must be empty")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := newHistogram([]uint64{10, 100, 1000})
	for _, v := range []uint64{1, 5, 10, 50, 200, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 1+5+10+50+200+5000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	// Buckets: <=10 holds {1,5,10}, <=100 holds {50}, <=1000 holds
	// {200}, overflow holds {5000}.
	want := []uint64{3, 1, 1, 1}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Fatalf("p50 = %d, want 10 (bound of the median's bucket)", q)
	}
	// The top quantile falls in the overflow bucket: report observed max.
	if q := h.Quantile(0.99); q != 5000 {
		t.Fatalf("p99 = %d, want 5000 (observed max)", q)
	}
	if h.Quantile(0.0) != 10 {
		t.Fatalf("q=0 should clamp to the first observation's bucket")
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := newHistogram([]uint64{10})
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", q)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(SizeBounds())
	var wg sync.WaitGroup
	const goroutines, n = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				h.Observe(uint64(g*n + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*n {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*n)
	}
	if h.max.Load() != goroutines*n-1 {
		t.Fatalf("max = %d, want %d", h.max.Load(), goroutines*n-1)
	}
}

func TestExpBounds(t *testing.T) {
	b := ExpBounds(1, 2, 4)
	want := []uint64{1, 2, 4, 8}
	if len(b) != len(want) {
		t.Fatalf("len = %d, want %d", len(b), len(want))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds[%d] = %d, want %d", i, b[i], want[i])
		}
	}
	if z := ExpBounds(0, 2, 2); z[0] != 1 {
		t.Fatalf("start 0 must clamp to 1, got %d", z[0])
	}
}

func TestSnapshotAndFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs").Add(3)
	r.Gauge("queue").Set(2)
	h := r.Histogram("lat", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)

	snap := r.Snapshot()
	if snap.Counters["jobs"] != 3 || snap.Gauges["queue"] != 2 {
		t.Fatalf("snapshot scalars wrong: %+v", snap)
	}
	hs := snap.Histograms["lat"]
	if hs.Count != 2 || hs.Sum != 55 || hs.Max != 50 {
		t.Fatalf("snapshot histogram wrong: %+v", hs)
	}
	if len(hs.Buckets) != len(hs.Bounds)+1 {
		t.Fatalf("snapshot must carry the overflow bucket")
	}

	out := r.Format()
	for _, want := range []string{"metrics summary", "jobs", "queue", "lat", "count=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundsAreSortedAndStable(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []uint64{100, 1, 10})
	for i := 1; i < len(h.bounds); i++ {
		if h.bounds[i-1] >= h.bounds[i] {
			t.Fatalf("bounds not sorted: %v", h.bounds)
		}
	}
	// A second lookup with different bounds keeps the original layout.
	h2 := r.Histogram("h", []uint64{7})
	if h2 != h {
		t.Fatalf("second histogram lookup must return the original")
	}
}
