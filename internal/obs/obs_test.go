package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Counter("c") != nil || r.Gauge("g") != nil ||
		r.Histogram("h", SizeBounds()) != nil || r.Span("cat", "s") != nil {
		t.Fatalf("nil recorder must hand out nil handles")
	}
	r.Emit("e", nil)
	ph := r.PhaseStart("corpus", map[string]any{"k": 1})
	if ph != nil {
		t.Fatalf("nil recorder must return a nil phase")
	}
	ph.End(map[string]any{"k": 2}) // must not panic
}

func TestPhaseRecordsSpanAndEvents(t *testing.T) {
	var buf bytes.Buffer
	rec := &Recorder{
		Metrics:  NewRegistry(),
		Trace:    NewTracer(),
		Progress: NewProgress(&buf),
	}
	ph := rec.PhaseStart("sampling", map[string]any{"templates": 50})
	ph.End(map[string]any{"best_score": 0.5})

	events := rec.Trace.Events()
	if len(events) != 1 {
		t.Fatalf("got %d trace events, want 1", len(events))
	}
	ev := events[0]
	if ev.Name != "sampling" || ev.Cat != "phase" {
		t.Fatalf("bad span: %+v", ev)
	}
	if ev.Args["templates"] != 50 || ev.Args["best_score"] != 0.5 {
		t.Fatalf("phase args must merge start and end: %+v", ev.Args)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d progress lines, want phase_start + phase_end:\n%s", len(lines), buf.String())
	}
	var start, end map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &start); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &end); err != nil {
		t.Fatal(err)
	}
	if start["event"] != "phase_start" || start["phase"] != "sampling" {
		t.Fatalf("bad phase_start: %v", start)
	}
	if end["event"] != "phase_end" || end["best_score"] != 0.5 {
		t.Fatalf("bad phase_end: %v", end)
	}
}

func TestRecorderWithPartialSinks(t *testing.T) {
	// Metrics only: spans and events are no-ops, counters work.
	rec := &Recorder{Metrics: NewRegistry()}
	rec.Counter("c").Inc()
	if rec.Span("cat", "s") != nil {
		t.Fatalf("span must be nil when tracing is off")
	}
	rec.Emit("e", nil)
	ph := rec.PhaseStart("tac", nil)
	ph.End(nil)
	if got := rec.Metrics.Snapshot().Counters["c"]; got != 1 {
		t.Fatalf("counter = %d, want 1", got)
	}
}
