package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// TraceEvent is one Chrome trace-event (the "Trace Event Format"
// understood by Perfetto and chrome://tracing). The tracer emits
// complete events (ph "X"): one record per span with its start
// timestamp and duration, both in microseconds.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// maxTraceEvents bounds the tracer's buffer: beyond it new spans are
// dropped (and counted) instead of growing memory without limit on
// paper-scale runs.
const maxTraceEvents = 1 << 20

// Tracer collects spans and exports them as Chrome trace-event JSON.
// Spans may start and end on any goroutine; each span carries a tid
// that becomes its own lane in the trace viewer (tid 1 is the flow,
// 100+i is scheduler worker i). A nil *Tracer is a valid no-op.
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	events  []TraceEvent
	dropped uint64
}

// NewTracer creates a tracer whose timestamps are relative to now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Span starts a span in the given category on the flow lane (tid 1).
// End it with Span.End; attach attributes with Span.SetArg or WithTid
// before ending. A nil tracer returns a nil (no-op) span.
func (t *Tracer) Span(cat, name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, cat: cat, name: name, tid: 1, start: time.Since(t.epoch)}
}

// Dropped reports how many spans were discarded because the bounded
// event buffer was full.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// add appends a completed event, honoring the buffer bound.
func (t *Tracer) add(ev TraceEvent) {
	t.mu.Lock()
	if len(t.events) >= maxTraceEvents {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Events returns a copy of the completed events collected so far.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// Export writes the collected events as one JSON array — a complete
// Chrome trace file loadable in Perfetto.
func (t *Tracer) Export(w io.Writer) error {
	if t == nil {
		_, err := w.Write([]byte("[]\n"))
		return err
	}
	t.mu.Lock()
	events := append([]TraceEvent(nil), t.events...)
	t.mu.Unlock()
	if events == nil {
		events = []TraceEvent{} // a span-less run is still a valid trace, not "null"
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// Span is one in-flight trace span. A nil *Span is a valid no-op.
type Span struct {
	t     *Tracer
	cat   string
	name  string
	tid   int
	start time.Duration
	args  map[string]any
}

// WithTid moves the span to the given trace lane and returns it.
func (s *Span) WithTid(tid int) *Span {
	if s != nil {
		s.tid = tid
	}
	return s
}

// SetArg attaches an attribute shown by the trace viewer.
func (s *Span) SetArg(key string, value any) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = map[string]any{}
	}
	s.args[key] = value
}

// End completes the span, recording one "X" event.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Since(s.t.epoch)
	s.t.add(TraceEvent{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		Ts:   float64(s.start.Microseconds()),
		Dur:  float64((end - s.start).Microseconds()),
		Pid:  1,
		Tid:  s.tid,
		Args: s.args,
	})
}
