package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Progress is a structured JSONL event stream: one JSON object per
// line, written as events happen, so a long run can be watched live
// (`ascdg -progress 2>events.jsonl`, or pipe stderr through jq). Every
// event carries "event" (its kind) and "t_ms" (milliseconds since the
// stream started); the emitter's fields follow. Encoding happens under
// a mutex — emission sites are phase transitions and optimizer
// iterations, never the per-simulation hot path. A nil *Progress is a
// valid no-op.
type Progress struct {
	epoch time.Time

	mu  sync.Mutex
	enc *json.Encoder
}

// NewProgress creates a progress stream writing to w.
func NewProgress(w io.Writer) *Progress {
	return &Progress{epoch: time.Now(), enc: json.NewEncoder(w)}
}

// Emit writes one event line. fields may be nil; the reserved keys
// "event" and "t_ms" are overwritten if present.
func (p *Progress) Emit(event string, fields map[string]any) {
	if p == nil {
		return
	}
	rec := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		rec[k] = v
	}
	rec["event"] = event
	rec["t_ms"] = time.Since(p.epoch).Milliseconds()
	p.mu.Lock()
	// Encode errors (closed pipe, full disk) are deliberately dropped:
	// progress is best-effort and must never fail the run.
	_ = p.enc.Encode(rec)
	p.mu.Unlock()
}
