package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams from different seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child's first outputs must differ from the parent's continuation.
	collisions := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("parent and child streams collided %d/64 times", collisions)
	}
}

func TestSplitStringDeterministicAndOrderIndependent(t *testing.T) {
	a := New(99).SplitString("alpha")
	b := New(99).SplitString("alpha")
	if a.Uint64() != b.Uint64() {
		t.Fatal("SplitString with equal labels must produce equal streams")
	}
	// Order independence: deriving "beta" first must not change "alpha".
	p := New(99)
	_ = p.SplitString("beta")
	c := p.SplitString("alpha")
	d := New(99).SplitString("alpha")
	if c.Uint64() != d.Uint64() {
		t.Fatal("SplitString must not depend on prior derivations")
	}
}

func TestSplitStringLabelsDiffer(t *testing.T) {
	r := New(5)
	a := r.SplitString("a")
	b := r.SplitString("b")
	if a.Uint64() == b.Uint64() {
		t.Fatal("different labels should give different streams")
	}
}

func TestSplitIndexDeterministic(t *testing.T) {
	if New(3).SplitIndex(9).Uint64() != New(3).SplitIndex(9).Uint64() {
		t.Fatal("SplitIndex must be deterministic")
	}
	if New(3).SplitIndex(9).Uint64() == New(3).SplitIndex(10).Uint64() {
		t.Fatal("adjacent indices must differ")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(0).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(13)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntRange(5, 8)
		if v < 5 || v > 8 {
			t.Fatalf("IntRange(5,8) = %d", v)
		}
		seen[v] = true
	}
	for v := 5; v <= 8; v++ {
		if !seen[v] {
			t.Errorf("IntRange(5,8) never produced %d in 1000 draws", v)
		}
	}
	if got := r.IntRange(4, 4); got != 4 {
		t.Fatalf("IntRange(4,4) = %d, want 4", got)
	}
}

func TestIntRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange(2,1) should panic")
		}
	}()
	New(0).IntRange(2, 1)
}

func TestFloat64Range(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(19)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(29)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %v", rate)
	}
	if New(1).Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !New(1).Bool(1.1) {
		t.Error("Bool(>1) must be true")
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleCoversOrders(t *testing.T) {
	r := New(31)
	counts := map[[3]int]int{}
	for i := 0; i < 6000; i++ {
		a := [3]int{0, 1, 2}
		r.Shuffle(3, func(i, j int) { a[i], a[j] = a[j], a[i] })
		counts[a]++
	}
	if len(counts) != 6 {
		t.Fatalf("shuffle produced %d of 6 possible orders", len(counts))
	}
	for order, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("order %v appeared %d times, want ~1000", order, c)
		}
	}
}

func TestWeightedIndexDistribution(t *testing.T) {
	r := New(37)
	weights := []int{10, 0, 30, 60}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.WeightedIndex(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index picked %d times", counts[1])
	}
	for i, w := range weights {
		if w == 0 {
			continue
		}
		want := float64(w) / 100
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d rate = %v, want ~%v", i, got, want)
		}
	}
}

func TestWeightedIndexAllZeroUniform(t *testing.T) {
	r := New(41)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[r.WeightedIndex([]int{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("all-zero weights index %d picked %d times, want ~10000", i, c)
		}
	}
}

func TestWeightedIndexNegativeTreatedAsZero(t *testing.T) {
	r := New(43)
	for i := 0; i < 1000; i++ {
		if idx := r.WeightedIndex([]int{-5, 10, -1}); idx != 1 {
			t.Fatalf("negative weights should never be picked, got index %d", idx)
		}
	}
}

func TestWeightedIndexPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WeightedIndex(nil) should panic")
		}
	}()
	New(0).WeightedIndex(nil)
}

func TestUint64Distribution(t *testing.T) {
	// Crude equidistribution check: each of the top 4 bits patterns of the
	// high nibble should appear roughly uniformly.
	r := New(47)
	counts := make([]int, 16)
	const n = 160000
	for i := 0; i < n; i++ {
		counts[r.Uint64()>>60]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("high nibble %x frequency %d, want ~10000", i, c)
		}
	}
}
