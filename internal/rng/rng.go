// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the AS-CDG reproduction.
//
// Reproducibility is a hard requirement for the simulation substrate: a
// test-instance is identified by (template, seed), and re-simulating the
// same instance must produce the same coverage vector. The standard
// library's global math/rand state is unsuitable because independent
// subsystems (stimuli generation, direction sampling in the optimizer,
// noise injection in the DUV models) would perturb each other's streams.
//
// The generator is a SplitMix64 core: tiny state, passes BigCrush-level
// statistical testing for the quantities consumed here, and supports
// cheap O(1) stream splitting so that every simulation, template and
// optimizer iteration gets an independent, reproducible stream.
package rng

import "math"

// golden is the 64-bit golden-ratio increment used by SplitMix64.
const golden = 0x9e3779b97f4a7c15

// RNG is a deterministic pseudo-random number generator. The zero value
// is a valid generator seeded with 0; prefer New for clarity.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators created with
// the same seed produce identical streams.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// State returns the generator's current stream state. New(state)
// reconstructs a generator that continues the stream identically, which
// is how a batch seed travels across a process boundary (the farm wire
// protocol ships chunk seeds as raw state words). It does not advance
// the stream.
func (r *RNG) State() uint64 { return r.state }

// Uint64 returns the next value in the stream (SplitMix64 output function).
func (r *RNG) Uint64() uint64 {
	r.state += golden
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives a new generator whose stream is statistically independent
// of the parent's continuation. The parent stream advances by one step.
func (r *RNG) Split() *RNG {
	// xor with a distinct constant so Split(), then Uint64() on the parent,
	// never yields the child's seed.
	return &RNG{state: r.Uint64() ^ 0x2545f4914f6cdd1d}
}

// SplitString derives a new generator keyed by label. Equal labels on
// equal parents yield equal children; the parent stream is not advanced,
// so the derivation is order-independent.
func (r *RNG) SplitString(label string) *RNG {
	// FNV-1a over the label, folded into the parent state.
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	child := &RNG{state: r.state ^ h}
	// Burn one output so children of labels differing only in one bit
	// decorrelate immediately.
	child.Uint64()
	return child
}

// SplitIndex derives a new generator keyed by an integer index. Like
// SplitString it does not advance the parent stream.
func (r *RNG) SplitIndex(i uint64) *RNG {
	child := &RNG{state: r.state ^ (i+1)*0xd1342543de82ef95}
	child.Uint64()
	return child
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire-style rejection-free-enough bound: for the modest n used in
	// this repository (weights, subranges, event counts) modulo bias is
	// below 2^-40 and irrelevant; use multiply-shift for speed.
	return int((uint64(uint32(r.Uint64())) * uint64(n)) >> 32)
}

// IntRange returns a uniform value in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange called with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box-Muller; one value
// per call, the second is discarded to keep the stream position simple).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// WeightedIndex picks an index in [0, len(weights)) with probability
// proportional to weights[i]. Negative weights are treated as zero. If
// all weights are zero it picks uniformly. It panics on an empty slice.
func (r *RNG) WeightedIndex(weights []int) int {
	if len(weights) == 0 {
		panic("rng: WeightedIndex called with no weights")
	}
	total := 0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return r.Intn(len(weights))
	}
	pick := r.Intn(total)
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if pick < w {
			return i
		}
		pick -= w
	}
	// Unreachable if total was computed consistently.
	return len(weights) - 1
}
