// Package duv defines the design-under-verification abstraction of the
// AS-CDG reproduction and a registry of the built-in behavioral unit
// models.
//
// The paper evaluates AS-CDG on units of IBM high-end processors whose
// simulators and coverage traces are proprietary. This repository
// substitutes behavioral Go models of comparable units (an I/O unit, an
// L3 cache, an instruction fetch unit) that expose the same contract the
// flow relies on: a parametrized biased-random stimuli stream drives the
// unit for a bounded number of cycles and a coverage vector falls out.
// The flow itself stays black-box (paper Section I): it never inspects a
// model's internals, only templates in and coverage out.
package duv

import (
	"fmt"
	"sort"

	"repro/internal/coverage"
	"repro/internal/generator"
	"repro/internal/template"
)

// DUV is one design-under-verification: a behavioral model with a
// coverage model, default parameter behavior, and a pre-existing
// regression suite of test-templates.
type DUV interface {
	// Name returns the unit's registry name.
	Name() string
	// Model returns the unit's coverage model.
	Model() *coverage.Model
	// Defaults returns the default behavior of every generator parameter
	// the unit consults.
	Defaults() generator.Defaults
	// BaseTemplates returns the unit's existing regression suite — the
	// test-templates the verification team wrote over the project's
	// lifetime (paper Section IV-B). The coarse-grained search mines
	// these.
	BaseTemplates() []*template.Template
	// Simulate runs one test-instance (the generator is bound to a
	// template and a seed) and returns its coverage vector.
	Simulate(g *generator.Generator) coverage.Vector
}

// factories holds the registered DUV constructors.
var factories = map[string]func() DUV{}

// Register adds a DUV constructor under the given name. It panics on a
// duplicate name; registration happens from init functions.
func Register(name string, f func() DUV) {
	if _, dup := factories[name]; dup {
		panic(fmt.Sprintf("duv: duplicate registration of %q", name))
	}
	factories[name] = f
}

// New constructs the named DUV.
func New(name string) (DUV, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("duv: unknown unit %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names returns the registered unit names, sorted.
func Names() []string {
	names := make([]string, 0, len(factories))
	for n := range factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DefaultsFromTemplate converts a template's parameters into a Defaults
// map — a convenient way for a unit model to declare its default
// behavior in the template language itself.
func DefaultsFromTemplate(t *template.Template) generator.Defaults {
	d := generator.Defaults{}
	for _, p := range t.Params {
		d[p.ParamName()] = p
	}
	return d
}

// MustParseTemplates parses a list of template sources, panicking on any
// error; intended for the statically-known base suites of unit models.
func MustParseTemplates(srcs ...string) []*template.Template {
	out := make([]*template.Template, len(srcs))
	for i, src := range srcs {
		t, err := template.Parse(src)
		if err != nil {
			panic(fmt.Sprintf("duv: bad built-in template %d: %v", i, err))
		}
		out[i] = t
	}
	return out
}
