package noc

import (
	"fmt"
	"testing"

	"repro/internal/coverage"
	"repro/internal/generator"
	"repro/internal/rng"
	"repro/internal/template"
)

func runMany(u *Router, tmpl *template.Template, n int, seed uint64) *coverage.Counts {
	c := coverage.NewCountsFor(u.Model())
	base := rng.New(seed)
	for i := 0; i < n; i++ {
		g := generator.New(tmpl, u.Defaults(), base.SplitIndex(uint64(i)).Uint64())
		c.Add(u.Simulate(g))
	}
	return c
}

// saturating is a hand-built template that floods the router: maximum
// injection, long packets, hotspot traffic on one port, balanced VCs.
func saturating(t *testing.T) *template.Template {
	t.Helper()
	tmpl, err := template.Parse(`
template noc_flood {
    weight TrafficPattern {
        uniform:  10;
        hotspot:  90;
        neighbor: 0;
        tornado:  0;
    }
    range InjectionRate [90 : 100];
    range PacketLen [12 : 16];
    weight VCSel {
        vc0: 25;
        vc1: 25;
        vc2: 25;
        vc3: 25;
    }
    weight HotspotPort {
        n: 100;
        s: 0;
        e: 0;
        w: 0;
        l: 0;
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	return tmpl
}

func TestModelShape(t *testing.T) {
	u := New()
	if u.Name() != UnitName {
		t.Fatalf("Name = %q", u.Name())
	}
	fam, ok := u.Model().Family(FamilyName)
	if !ok || len(fam) != 12 {
		t.Fatalf("family = %v", fam)
	}
	if u.Cross().Size() != 80 {
		t.Fatalf("cross size = %d", u.Cross().Size())
	}
	if _, ok := u.Model().Cross(CrossName); !ok {
		t.Fatal("cross not registered")
	}
	for _, b := range u.BaseTemplates() {
		if err := b.Validate(); err != nil {
			t.Errorf("base %q invalid: %v", b.Name, err)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	u := New()
	for i := 0; i < 5; i++ {
		g1 := generator.New(nil, u.Defaults(), uint64(i))
		g2 := generator.New(nil, u.Defaults(), uint64(i))
		if !u.Simulate(g1).Equal(u.Simulate(g2)) {
			t.Fatalf("seed %d: not deterministic", i)
		}
	}
}

func TestRetryFamilyGradient(t *testing.T) {
	u := New()
	for _, tmpl := range []*template.Template{nil, saturating(t)} {
		c := runMany(u, tmpl, 200, 3)
		fam, _ := u.Model().Family(FamilyName)
		for i := 1; i < len(fam); i++ {
			if c.Hits(fam[i]) > c.Hits(fam[i-1]) {
				t.Fatalf("gradient violated at %s", u.Model().Name(fam[i]))
			}
		}
	}
}

func TestDefaultTrafficLeavesDeepRetryUncovered(t *testing.T) {
	u := New()
	c := runMany(u, nil, 300, 5)
	m := u.Model()
	if c.Hits(m.MustLookup("retry_d12")) != 0 {
		t.Error("retry_d12 hit under default traffic")
	}
	if c.Hits(m.MustLookup("retry_d01")) == 0 {
		t.Error("retry_d01 never hit under default traffic; model degenerate")
	}
}

func TestSaturationReachesDeepRetry(t *testing.T) {
	u := New()
	c := runMany(u, saturating(t), 300, 7)
	m := u.Model()
	r8 := c.HitRate(m.MustLookup("retry_d08"))
	if r8 < 0.2 {
		t.Errorf("retry_d08 rate = %.3f under flood, want >= 0.2", r8)
	}
	t.Logf("flood rates: d04=%.3f d08=%.3f d12=%.3f",
		c.HitRate(m.MustLookup("retry_d04")), r8, c.HitRate(m.MustLookup("retry_d12")))
}

func TestUTurnSliceUnhittable(t *testing.T) {
	u := New()
	c := runMany(u, saturating(t), 200, 9)
	m := u.Model()
	// All in==out cross events must stay dark (u-turns rejected).
	for i, in := range inportNames {
		for _, vc := range vcNames {
			name := fmt.Sprintf("%s_%s_%s_%s", CrossName, in, vc, outportNames[i])
			if c.Hits(m.MustLookup(name)) != 0 {
				t.Fatalf("u-turn event %s was hit", name)
			}
		}
	}
	// But the reject event itself fires under uniform traffic.
	d := runMany(u, nil, 100, 10)
	if d.Hits(m.MustLookup("noc_uturn_reject")) == 0 {
		t.Error("u-turn rejection never exercised")
	}
}

func TestVCBiasShowsInCoverage(t *testing.T) {
	u := New()
	c := runMany(u, nil, 200, 11)
	m := u.Model()
	// Default VCSel is 70% vc0: vc3 traffic should be rarer.
	vc0 := c.Hits(m.MustLookup("noc_fromN_vc0_toS"))
	vc3 := c.Hits(m.MustLookup("noc_fromN_vc3_toS"))
	if vc3 > vc0 {
		t.Errorf("vc bias not visible: vc0=%d vc3=%d", vc0, vc3)
	}
}

func TestCreditsConserved(t *testing.T) {
	// Structural invariant: after any simulation the credit pool is
	// intact (every allocation was returned). Verified indirectly: a
	// second simulation on the same Router instance behaves identically
	// for the same seed, which fails if shared state leaked.
	u := New()
	g1 := generator.New(saturating(t), u.Defaults(), 42)
	first := u.Simulate(g1)
	g2 := generator.New(saturating(t), u.Defaults(), 42)
	second := u.Simulate(g2)
	if !first.Equal(second) {
		t.Fatal("router leaked state across simulations")
	}
}

func TestFloodExhaustsFlowControl(t *testing.T) {
	u := New()
	c := runMany(u, saturating(t), 100, 13)
	m := u.Model()
	if c.HitRate(m.MustLookup("noc_credit_stall")) < 0.9 {
		t.Error("flood should exhaust credits in nearly every sim")
	}
	if c.Hits(m.MustLookup("noc_all_vcs_busy")) == 0 {
		t.Error("flood should saturate all VCs of the hotspot port")
	}
	if c.Hits(m.MustLookup("noc_retry_drop")) == 0 {
		t.Error("flood should overflow the retry queue")
	}
}

func TestNeighborPatternNeverReachesLocalPort(t *testing.T) {
	u := New()
	m := u.Model()
	// Pure neighbor/tornado traffic is port-to-port: out_l events need
	// uniform traffic.
	tmpl, err := template.Parse(`
template noc_ring_only {
    weight TrafficPattern {
        uniform:  0;
        hotspot:  0;
        neighbor: 60;
        tornado:  40;
    }
    range InjectionRate [50 : 90];
}
`)
	if err != nil {
		t.Fatal(err)
	}
	c := runMany(u, tmpl, 100, 14)
	for _, in := range inportNames {
		for _, vc := range vcNames {
			name := fmt.Sprintf("%s_%s_%s_toL", CrossName, in, vc)
			if c.Hits(m.MustLookup(name)) != 0 {
				t.Fatalf("ring traffic reached the local port: %s", name)
			}
		}
	}
	d := runMany(u, nil, 200, 15)
	if d.Hits(m.MustLookup("noc_fromN_vc0_toL")) == 0 {
		t.Error("uniform default traffic should reach the local port")
	}
}

func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report skipped in -short")
	}
	u := New()
	m := u.Model()
	fam, _ := m.Family(FamilyName)
	report := func(name string, tmpl *template.Template, seed uint64) {
		c := runMany(u, tmpl, 300, seed)
		line := name + ":"
		for _, id := range fam {
			line += fmt.Sprintf(" %.2f", c.HitRate(id))
		}
		t.Log(line)
	}
	report("defaults", nil, 1)
	for i, b := range u.BaseTemplates() {
		report(b.Name, b, uint64(100+i))
	}
	report("flood", saturating(t), 999)
}
