// Package noc implements a behavioral model of a network-on-chip
// router: a 5-port wormhole router with 4 virtual channels and
// credit-based flow control. The paper reports AS-CDG deployed on "many
// units inside two high-end processor systems" beyond the three it
// tables; this unit extends the reproduction's test bed with a fourth,
// structurally different coverage problem that combines both coverage
// shapes in one model:
//
//   - an ordered family retry_d01..retry_d12 over the depth of the
//     retry queue (flits that lost arbitration or ran out of credits) —
//     a buffer-utilization gradient like Figs. 3/4;
//   - a cross product noc_{in}x{vc}x{out} over input port, virtual
//     channel, and output port (4 x 4 x 5 = 80 events) — a Fig. 5-style
//     steering problem (the u-turn slice in=out is unroutable and stays
//     uncovered, like the IFU's entry7 slice).
package noc

import (
	"fmt"

	"repro/internal/coverage"
	"repro/internal/duv"
	"repro/internal/generator"
	"repro/internal/template"
)

// Router geometry and flow-control constants.
const (
	simCycles    = 1500
	numInports   = 4 // n, s, e, w (local only injects)
	numVCs       = 4
	numOutports  = 5 // n, s, e, w, local
	creditsPerVC = 3
	retryCap     = 16
)

// FamilyName is the registered name of the retry-depth family.
const FamilyName = "retry_depth"

// CrossName is the registered name of the routing cross product.
const CrossName = "noc"

// UnitName is the registry name of this unit.
const UnitName = "noc"

// retryThresholds are the family's queue-depth levels.
var retryThresholds = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}

var (
	inportNames  = []string{"fromN", "fromS", "fromE", "fromW"}
	vcNames      = []string{"vc0", "vc1", "vc2", "vc3"}
	outportNames = []string{"toN", "toS", "toE", "toW", "toL"}
)

func init() {
	duv.Register(UnitName, func() duv.DUV { return New() })
}

// Router is the behavioral NoC router model. Safe for concurrent
// Simulate calls.
type Router struct {
	model    *coverage.Model
	defaults generator.Defaults
	base     []*template.Template
	cross    *coverage.CrossProduct

	retryIDs []int
	crossIDs [numInports][numVCs][numOutports]int
	evCreditStall, evArbLoss, evRetryDrop,
	evHotspot, evAllVCsBusy, evLongPacket, evUTurn int
}

// New constructs the router model.
func New() *Router {
	cp, err := coverage.NewCrossProduct(CrossName, []coverage.Dim{
		{Name: "inport", Values: inportNames},
		{Name: "vc", Values: vcNames},
		{Name: "outport", Values: outportNames},
	})
	if err != nil {
		panic(err)
	}
	var names []string
	for _, th := range retryThresholds {
		names = append(names, fmt.Sprintf("retry_d%02d", th))
	}
	names = append(names, cp.EventNames()...)
	names = append(names,
		"noc_credit_stall", "noc_arb_loss", "noc_retry_drop",
		"noc_hotspot_seen", "noc_all_vcs_busy", "noc_long_packet",
		"noc_uturn_reject",
	)
	m := coverage.MustModel(names)
	famNames := names[:len(retryThresholds)]
	if err := m.AddFamily(FamilyName, famNames); err != nil {
		panic(err)
	}
	if err := m.AddCross(cp); err != nil {
		panic(err)
	}

	u := &Router{model: m, cross: cp}
	for _, fn := range famNames {
		u.retryIDs = append(u.retryIDs, m.MustLookup(fn))
	}
	for i := 0; i < numInports; i++ {
		for v := 0; v < numVCs; v++ {
			for o := 0; o < numOutports; o++ {
				u.crossIDs[i][v][o] = m.MustLookup(cp.EventName([]int{i, v, o}))
			}
		}
	}
	u.evCreditStall = m.MustLookup("noc_credit_stall")
	u.evArbLoss = m.MustLookup("noc_arb_loss")
	u.evRetryDrop = m.MustLookup("noc_retry_drop")
	u.evHotspot = m.MustLookup("noc_hotspot_seen")
	u.evAllVCsBusy = m.MustLookup("noc_all_vcs_busy")
	u.evLongPacket = m.MustLookup("noc_long_packet")
	u.evUTurn = m.MustLookup("noc_uturn_reject")

	u.defaults = duv.DefaultsFromTemplate(duv.MustParseTemplates(defaultsSource)[0])
	u.base = duv.MustParseTemplates(baseSources...)
	return u
}

// Name implements duv.DUV.
func (u *Router) Name() string { return UnitName }

// Model implements duv.DUV.
func (u *Router) Model() *coverage.Model { return u.model }

// Cross returns the routing cross product.
func (u *Router) Cross() *coverage.CrossProduct { return u.cross }

// Defaults implements duv.DUV.
func (u *Router) Defaults() generator.Defaults { return u.defaults }

// BaseTemplates implements duv.DUV.
func (u *Router) BaseTemplates() []*template.Template {
	out := make([]*template.Template, len(u.base))
	for i, t := range u.base {
		out[i] = t.Clone()
	}
	return out
}

// outportFor resolves a traffic pattern to an output port for a packet
// entering at inport.
func outportFor(pattern string, inport int, g *generator.Generator) int {
	switch pattern {
	case "hotspot":
		// All traffic converges on the hotspot port.
		return hotspotIndex(g.PickValue("HotspotPort"))
	case "neighbor":
		// Each inport forwards to its clockwise neighbor (n->e, e->s, ...).
		return (inport + 1) % numInports
	case "tornado":
		// Halfway around: opposite port.
		return (inport + 2) % numInports
	default: // uniform over all five outports
		return g.RNG().Intn(numOutports)
	}
}

func hotspotIndex(v string) int {
	switch v { // HotspotPort values are n, s, e, w, l
	case "n":
		return 0
	case "s":
		return 1
	case "e":
		return 2
	case "w":
		return 3
	default:
		return 4
	}
}

// flit is one in-flight packet at the router.
type flit struct {
	inport, vc, outport int
	remaining           int // flits left to transmit
}

// Simulate implements duv.DUV.
func (u *Router) Simulate(g *generator.Generator) coverage.Vector {
	v := coverage.NewVectorFor(u.model)
	r := g.RNG()

	var credits [numOutports][numVCs]int
	for o := range credits {
		for c := range credits[o] {
			credits[o][c] = creditsPerVC
		}
	}
	// Downstream drains one credit-holding flit per outport per cycle
	// with some jitter.
	var active []flit // packets holding a VC
	retry := 0        // retry queue depth
	maxRetry := 0

	for cycle := 0; cycle < simCycles; cycle++ {
		// Injection at each inport; the switch allocator grants at most
		// two new packets per cycle.
		grants := 0
		for in := 0; in < numInports; in++ {
			if r.Intn(100) >= g.PickInt("InjectionRate") {
				continue
			}
			pattern := g.PickValue("TrafficPattern")
			if pattern == "hotspot" {
				v.Set(u.evHotspot)
			}
			out := outportFor(pattern, in, g)
			vc := int(g.PickValue("VCSel")[2] - '0')
			length := g.PickInt("PacketLen")
			if length >= 12 {
				v.Set(u.evLongPacket)
			}

			if out == in {
				// U-turns are architecturally forbidden; the router
				// rejects the packet at route computation. The in==out
				// slice of the cross product is therefore unhittable.
				v.Set(u.evUTurn)
				continue
			}
			switch {
			case credits[out][vc] == 0:
				v.Set(u.evCreditStall)
				retryPush(&retry, v, u)
			case grants >= 2:
				// Switch allocation contention: the VC has credits but
				// the crossbar is out of grant slots this cycle.
				v.Set(u.evArbLoss)
				retryPush(&retry, v, u)
			default:
				// Allocate a credit and start transmitting.
				grants++
				credits[out][vc]--
				active = append(active, flit{inport: in, vc: vc, outport: out, remaining: length})
				v.Set(u.crossIDs[in][vc][out])
			}
		}

		// All VCs of some outport busy?
		for o := 0; o < numOutports; o++ {
			busy := 0
			for c := 0; c < numVCs; c++ {
				if credits[o][c] == 0 {
					busy++
				}
			}
			if busy == numVCs {
				v.Set(u.evAllVCsBusy)
			}
		}

		// Transmission: each active packet sends one flit per cycle.
		n := 0
		for _, f := range active {
			f.remaining--
			if f.remaining > 0 {
				active[n] = f
				n++
			} else {
				// Packet done; the downstream drain returns the credit.
				credits[f.outport][f.vc]++
			}
		}
		active = active[:n]

		// Retry queue drains when bandwidth frees up.
		if retry > 0 && r.Bool(0.70) {
			retry--
		}
		if retry > maxRetry {
			maxRetry = retry
		}
	}

	for i, th := range retryThresholds {
		if maxRetry >= th {
			v.Set(u.retryIDs[i])
		}
	}
	return v
}

// retryPush adds one entry to the retry queue, dropping at capacity.
func retryPush(retry *int, v coverage.Vector, u *Router) {
	if *retry >= retryCap {
		v.Set(u.evRetryDrop)
		return
	}
	*retry++
}

// defaultsSource declares the unit's default parameter behavior: light
// uniform traffic on VC0.
const defaultsSource = `
template noc_defaults {
    weight TrafficPattern {
        uniform:  70;
        hotspot:  5;
        neighbor: 15;
        tornado:  10;
    }
    range InjectionRate [5 : 25];
    range PacketLen [1 : 8];
    weight VCSel {
        vc0: 70;
        vc1: 10;
        vc2: 10;
        vc3: 10;
    }
    weight HotspotPort {
        n: 20;
        s: 20;
        e: 20;
        w: 20;
        l: 20;
    }
}
`

// baseSources is the unit's pre-existing regression suite.
var baseSources = []string{
	`
template noc_regress_uniform {
    weight TrafficPattern {
        uniform:  90;
        hotspot:  0;
        neighbor: 5;
        tornado:  5;
    }
    range InjectionRate [5 : 25];
}
`, `
template noc_neighbor_streams {
    weight TrafficPattern {
        uniform:  10;
        hotspot:  0;
        neighbor: 70;
        tornado:  20;
    }
    range PacketLen [4 : 16];
}
`, `
template noc_hotspot_probe {
    weight TrafficPattern {
        uniform:  30;
        hotspot:  60;
        neighbor: 5;
        tornado:  5;
    }
    range InjectionRate [10 : 40];
    weight VCSel {
        vc0: 40;
        vc1: 20;
        vc2: 20;
        vc3: 20;
    }
}
`, `
template noc_saturation {
    range InjectionRate [25 : 60];
    range PacketLen [4 : 12];
}
`,
}
