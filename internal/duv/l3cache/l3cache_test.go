package l3cache

import (
	"fmt"
	"testing"

	"repro/internal/coverage"
	"repro/internal/generator"
	"repro/internal/rng"
	"repro/internal/template"
)

func runMany(u *L3Cache, tmpl *template.Template, n int, seed uint64) *coverage.Counts {
	c := coverage.NewCountsFor(u.Model())
	base := rng.New(seed)
	for i := 0; i < n; i++ {
		g := generator.New(tmpl, u.Defaults(), base.SplitIndex(uint64(i)).Uint64())
		c.Add(u.Simulate(g))
	}
	return c
}

func findBase(t *testing.T, u *L3Cache, name string) *template.Template {
	t.Helper()
	for _, b := range u.BaseTemplates() {
		if b.Name == name {
			return b
		}
	}
	t.Fatalf("base template %q not found", name)
	return nil
}

// optimalTemplate is a hand-built near-ideal bypass-stress template.
func optimalTemplate(t *testing.T) *template.Template {
	t.Helper()
	tmpl, err := template.Parse(`
template l3_optimal {
    weight ReqType {
        read:  80;
        write: 0;
        rwitm: 20;
        flush: 0;
        nop:   0;
    }
    weight BypassHint {
        on:  100;
        off: 0;
    }
    weight InterArrival {
        [0:0]:  100;
        [1:15]: 0;
    }
    range Locality [0 : 5];
}
`)
	if err != nil {
		t.Fatal(err)
	}
	return tmpl
}

func TestModelShape(t *testing.T) {
	u := New()
	if u.Name() != UnitName {
		t.Fatalf("Name = %q", u.Name())
	}
	fam, ok := u.Model().Family(FamilyName)
	if !ok || len(fam) != 16 {
		t.Fatalf("family = %v, %v", fam, ok)
	}
	if len(u.BaseTemplates()) < 5 {
		t.Fatal("base suite too small")
	}
	for _, b := range u.BaseTemplates() {
		if err := b.Validate(); err != nil {
			t.Errorf("base template %q invalid: %v", b.Name, err)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	u := New()
	tmpl := findBase(t, u, "l3_bypass_probe")
	for i := 0; i < 5; i++ {
		g1 := generator.New(tmpl, u.Defaults(), uint64(i))
		g2 := generator.New(tmpl, u.Defaults(), uint64(i))
		if !u.Simulate(g1).Equal(u.Simulate(g2)) {
			t.Fatalf("seed %d: simulation not deterministic", i)
		}
	}
}

func TestFamilyGradientIsMonotone(t *testing.T) {
	u := New()
	for _, tmpl := range []*template.Template{nil, findBase(t, u, "l3_bypass_probe"), optimalTemplate(t)} {
		c := runMany(u, tmpl, 300, 21)
		fam, _ := u.Model().Family(FamilyName)
		for i := 1; i < len(fam); i++ {
			if c.Hits(fam[i]) > c.Hits(fam[i-1]) {
				t.Fatalf("gradient violated at %s", u.Model().Name(fam[i]))
			}
		}
	}
}

func TestDefaultTrafficLeavesDeepLevelsUncovered(t *testing.T) {
	u := New()
	c := runMany(u, nil, 400, 3)
	m := u.Model()
	for _, ev := range []string{"byp_reqs08", "byp_reqs12", "byp_reqs16"} {
		if c.Hits(m.MustLookup(ev)) != 0 {
			t.Errorf("%s hit under default traffic (%d times)", ev, c.Hits(m.MustLookup(ev)))
		}
	}
	if c.HitRate(m.MustLookup("byp_reqs01")) < 0.3 {
		t.Errorf("byp_reqs01 rate %.3f too low under defaults", c.HitRate(m.MustLookup("byp_reqs01")))
	}
	// The cache itself must behave like a cache: hits and misses both occur.
	for _, ev := range []string{"l3_hit_read", "l3_miss_read", "l3_evict_clean", "l3_evict_dirty"} {
		if c.Hits(m.MustLookup(ev)) == 0 {
			t.Errorf("%s never hit; cache model degenerate", ev)
		}
	}
}

func TestBypassProbeBeatsDefault(t *testing.T) {
	u := New()
	def := runMany(u, nil, 300, 4)
	probe := runMany(u, findBase(t, u, "l3_bypass_probe"), 300, 5)
	m := u.Model()
	for _, ev := range []string{"byp_reqs02", "byp_reqs03"} {
		id := m.MustLookup(ev)
		if probe.HitRate(id) <= def.HitRate(id) {
			t.Errorf("%s: probe %.3f <= default %.3f", ev, probe.HitRate(id), def.HitRate(id))
		}
	}
}

func TestOptimalReachesDeepLevels(t *testing.T) {
	u := New()
	c := runMany(u, optimalTemplate(t), 400, 6)
	m := u.Model()
	r10 := c.HitRate(m.MustLookup("byp_reqs10"))
	r16 := c.HitRate(m.MustLookup("byp_reqs16"))
	if r10 < 0.1 {
		t.Errorf("byp_reqs10 rate = %.3f under optimal stimuli, want >= 0.1", r10)
	}
	if r16 > 0.3 {
		t.Errorf("byp_reqs16 rate = %.3f: tail too easy", r16)
	}
	t.Logf("optimal: byp10=%.3f byp13=%.3f byp16=%.4f",
		r10, c.HitRate(m.MustLookup("byp_reqs13")), r16)
}

func TestLocalityControlsMissRate(t *testing.T) {
	u := New()
	mk := func(lo, hi int) *template.Template {
		tmpl := template.New(fmt.Sprintf("loc_%d_%d", lo, hi))
		tmpl.SetParam(&template.RangeParam{Name: "Locality", Lo: lo, Hi: hi})
		return tmpl
	}
	m := u.Model()
	lowLoc := runMany(u, mk(0, 5), 200, 7)
	highLoc := runMany(u, mk(90, 100), 200, 8)
	missLow := lowLoc.HitRate(m.MustLookup("l3_miss_read"))
	hitHigh := highLoc.HitRate(m.MustLookup("l3_hit_read"))
	if missLow < 0.9 {
		t.Errorf("low locality should miss nearly always per sim; miss event rate %.3f", missLow)
	}
	if hitHigh < 0.9 {
		t.Errorf("high locality should hit within most sims; hit event rate %.3f", hitHigh)
	}
}

func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report skipped in -short")
	}
	u := New()
	m := u.Model()
	fam, _ := m.Family(FamilyName)
	report := func(name string, tmpl *template.Template, seed uint64) {
		c := runMany(u, tmpl, 500, seed)
		line := name + ":"
		for _, id := range fam {
			line += fmt.Sprintf(" %02d=%.1f%%", id+1, c.HitRate(id)*100)
		}
		t.Log(line)
	}
	report("defaults", nil, 1)
	for i, b := range u.BaseTemplates() {
		report(b.Name, b, uint64(100+i))
	}
	report("hand_optimal", optimalTemplate(t), 999)
}
