// Package l3cache implements a behavioral model of a processor L3 cache
// unit with a memory-bypass path. The number of simultaneously
// outstanding bypass requests drives the paper's Fig. 4 family of
// coverage events (byp_reqs01 .. byp_reqs16).
//
// The model substitutes for the proprietary IBM L3 unit (DESIGN.md,
// substitution table) while preserving the structure AS-CDG exploits:
// a 16-step ordered family with a long, steeply falling tail. Deep
// concurrency requires many bypass-eligible misses inside one request
// latency window, and a grant arbiter whose win probability falls with
// queue occupancy keeps the deepest levels rare even under ideal
// stimuli — the paper's best test hits byp_reqs16 only 0.1% of the time.
package l3cache

import (
	"fmt"

	"repro/internal/coverage"
	"repro/internal/duv"
	"repro/internal/generator"
	"repro/internal/template"
)

// Cache geometry and bypass-path constants. Calibrated against the
// paper's Fig. 4 shape; see EXPERIMENTS.md.
const (
	simCycles   = 2000
	numSets     = 64
	numWays     = 4
	addrLines   = 1 << 14 // distinct cache lines the stimuli may touch
	historySize = 16      // recently-touched lines reusable for locality

	bypassQueueCap = 16
	bypassLatency  = 30   // cycles a bypass request stays in flight
	latencyJitter  = 10   // +/- uniform jitter on the latency
	grantKnee      = 14.0 // occupancy at which the grant probability bottoms out
	grantFloor     = 0.05
)

// FamilyName is the registered name of the byp_reqs* family.
const FamilyName = "byp_reqs"

// UnitName is the registry name of this unit.
const UnitName = "l3cache"

func init() {
	duv.Register(UnitName, func() duv.DUV { return New() })
}

// L3Cache is the behavioral L3 model. One instance is safe for
// concurrent Simulate calls: the cache state is per-simulation.
type L3Cache struct {
	model    *coverage.Model
	defaults generator.Defaults
	base     []*template.Template

	bypIDs   [bypassQueueCap]int
	evHit    map[string]int // read/write hit
	evMiss   map[string]int // read/write miss
	evThread [4]int
	evRwitm, evFlush,
	evEvictClean, evEvictDirty,
	evSetConflict, evBypDenied, evQueueFull int
}

// New constructs the L3 cache model.
func New() *L3Cache {
	var names []string
	for i := 1; i <= bypassQueueCap; i++ {
		names = append(names, fmt.Sprintf("byp_reqs%02d", i))
	}
	names = append(names,
		"l3_hit_read", "l3_hit_write",
		"l3_miss_read", "l3_miss_write",
		"l3_rwitm_seen", "l3_flush_seen",
		"l3_t0_active", "l3_t1_active", "l3_t2_active", "l3_t3_active",
		"l3_evict_clean", "l3_evict_dirty",
		"l3_set_conflict", "l3_bypass_denied", "l3_queue_full",
	)
	m := coverage.MustModel(names)
	fam := names[:bypassQueueCap]
	if err := m.AddFamily(FamilyName, fam); err != nil {
		panic(err)
	}

	u := &L3Cache{
		model:  m,
		evHit:  map[string]int{},
		evMiss: map[string]int{},
	}
	for i := 0; i < bypassQueueCap; i++ {
		u.bypIDs[i] = m.MustLookup(fmt.Sprintf("byp_reqs%02d", i+1))
	}
	u.evHit["read"] = m.MustLookup("l3_hit_read")
	u.evHit["write"] = m.MustLookup("l3_hit_write")
	u.evMiss["read"] = m.MustLookup("l3_miss_read")
	u.evMiss["write"] = m.MustLookup("l3_miss_write")
	for t := 0; t < 4; t++ {
		u.evThread[t] = m.MustLookup(fmt.Sprintf("l3_t%d_active", t))
	}
	u.evRwitm = m.MustLookup("l3_rwitm_seen")
	u.evFlush = m.MustLookup("l3_flush_seen")
	u.evEvictClean = m.MustLookup("l3_evict_clean")
	u.evEvictDirty = m.MustLookup("l3_evict_dirty")
	u.evSetConflict = m.MustLookup("l3_set_conflict")
	u.evBypDenied = m.MustLookup("l3_bypass_denied")
	u.evQueueFull = m.MustLookup("l3_queue_full")

	u.defaults = duv.DefaultsFromTemplate(duv.MustParseTemplates(defaultsSource)[0])
	u.base = duv.MustParseTemplates(baseSources...)
	return u
}

// Name implements duv.DUV.
func (u *L3Cache) Name() string { return UnitName }

// Model implements duv.DUV.
func (u *L3Cache) Model() *coverage.Model { return u.model }

// Defaults implements duv.DUV.
func (u *L3Cache) Defaults() generator.Defaults { return u.defaults }

// BaseTemplates implements duv.DUV.
func (u *L3Cache) BaseTemplates() []*template.Template {
	out := make([]*template.Template, len(u.base))
	for i, t := range u.base {
		out[i] = t.Clone()
	}
	return out
}

// cacheLine is one way of a set.
type cacheLine struct {
	tag   int
	valid bool
	dirty bool
	lru   int // higher = more recently used
}

// Simulate implements duv.DUV.
func (u *L3Cache) Simulate(g *generator.Generator) coverage.Vector {
	v := coverage.NewVectorFor(u.model)
	r := g.RNG()

	var sets [numSets][numWays]cacheLine
	lruClock := 0

	history := make([]int, 0, historySize) // recently touched lines
	completions := make([]int, 0, bypassQueueCap)
	inFlight := 0
	maxInFlight := 0
	waitLeft := 0
	lastSet, lastSetCycle := -1, -1<<30

	for cycle := 0; cycle < simCycles; cycle++ {
		// Retire finished bypass requests.
		n := 0
		for _, c := range completions {
			if c > cycle {
				completions[n] = c
				n++
			} else {
				inFlight--
			}
		}
		completions = completions[:n]

		if waitLeft > 0 {
			waitLeft--
			continue
		}

		// Issue one request.
		req := g.PickValue("ReqType")
		thread := int(g.PickValue("ThreadSel")[1] - '0')
		v.Set(u.evThread[thread])

		if req == "nop" {
			waitLeft = g.PickInt("InterArrival")
			continue
		}
		if req == "flush" {
			v.Set(u.evFlush)
			// Flush invalidates one random set.
			s := r.Intn(numSets)
			for w := range sets[s] {
				if sets[s][w].valid && sets[s][w].dirty {
					v.Set(u.evEvictDirty)
				}
				sets[s][w] = cacheLine{}
			}
			waitLeft = g.PickInt("InterArrival")
			continue
		}

		// Address generation with tunable locality.
		var line int
		if len(history) > 0 && r.Intn(100) < g.PickInt("Locality") {
			line = history[r.Intn(len(history))]
		} else {
			line = r.Intn(addrLines)
		}
		if len(history) < historySize {
			history = append(history, line)
		} else {
			history[r.Intn(historySize)] = line
		}

		set := line % numSets
		tag := line / numSets
		if set == lastSet && cycle-lastSetCycle <= 4 {
			v.Set(u.evSetConflict)
		}
		lastSet, lastSetCycle = set, cycle

		isWrite := req == "write"
		if req == "rwitm" {
			v.Set(u.evRwitm)
		}

		// Lookup.
		lruClock++
		hitWay := -1
		for w := range sets[set] {
			if sets[set][w].valid && sets[set][w].tag == tag {
				hitWay = w
				break
			}
		}
		kind := "read"
		if isWrite {
			kind = "write"
		}
		if hitWay >= 0 {
			v.Set(u.evHit[kind])
			sets[set][hitWay].lru = lruClock
			if isWrite || req == "rwitm" {
				sets[set][hitWay].dirty = true
			}
		} else {
			v.Set(u.evMiss[kind])
			// Allocate: evict the LRU way.
			victim := 0
			for w := 1; w < numWays; w++ {
				if sets[set][w].lru < sets[set][victim].lru {
					victim = w
				}
			}
			if sets[set][victim].valid {
				if sets[set][victim].dirty {
					v.Set(u.evEvictDirty)
				} else {
					v.Set(u.evEvictClean)
				}
			}
			sets[set][victim] = cacheLine{
				tag: tag, valid: true,
				dirty: isWrite || req == "rwitm",
				lru:   lruClock,
			}

			// Bypass path: read-class misses with the hint on may go
			// straight to memory, occupying a bypass queue slot.
			if (req == "read" || req == "rwitm") && g.PickValue("BypassHint") == "on" {
				grant := 1 - float64(inFlight)/grantKnee
				if grant < grantFloor {
					grant = grantFloor
				}
				switch {
				case inFlight >= bypassQueueCap:
					v.Set(u.evQueueFull)
					v.Set(u.evBypDenied)
				case r.Bool(grant):
					inFlight++
					if inFlight > maxInFlight {
						maxInFlight = inFlight
					}
					lat := bypassLatency + r.Intn(2*latencyJitter+1) - latencyJitter
					completions = append(completions, cycle+lat)
				default:
					v.Set(u.evBypDenied)
				}
			}
		}

		waitLeft = g.PickInt("InterArrival")
	}

	for i := 0; i < bypassQueueCap; i++ {
		if maxInFlight >= i+1 {
			v.Set(u.bypIDs[i])
		}
	}
	return v
}

// defaultsSource declares the unit's default parameter behavior.
const defaultsSource = `
template l3_defaults {
    weight ReqType {
        read:  50;
        write: 30;
        rwitm: 10;
        flush: 5;
        nop:   5;
    }
    weight BypassHint {
        on:  10;
        off: 90;
    }
    weight ThreadSel {
        t0: 25;
        t1: 25;
        t2: 25;
        t3: 25;
    }
    range InterArrival [0 : 15];
    range Locality [40 : 90];
}
`

// baseSources is the unit's pre-existing regression suite.
var baseSources = []string{
	`
template l3_regress_default {
    weight ReqType {
        read:  50;
        write: 30;
        rwitm: 10;
        flush: 5;
        nop:   5;
    }
}
`, `
template l3_read_share {
    weight ReqType {
        read:  80;
        write: 10;
        rwitm: 5;
        flush: 0;
        nop:   5;
    }
    range Locality [70 : 95];
}
`, `
template l3_write_storm {
    weight ReqType {
        read:  10;
        write: 75;
        rwitm: 10;
        flush: 5;
        nop:   0;
    }
    range InterArrival [0 : 7];
    range Locality [10 : 50];
}
`, `
template l3_rwitm_mix {
    weight ReqType {
        read:  40;
        write: 20;
        rwitm: 35;
        flush: 0;
        nop:   5;
    }
    range Locality [30 : 70];
}
`, `
template l3_bypass_probe {
    weight ReqType {
        read:  70;
        write: 10;
        rwitm: 15;
        flush: 0;
        nop:   5;
    }
    weight BypassHint {
        on:  40;
        off: 60;
    }
    range InterArrival [0 : 7];
    range Locality [20 : 60];
}
`, `
template l3_flush_noise {
    weight ReqType {
        read:  40;
        write: 25;
        rwitm: 5;
        flush: 25;
        nop:   5;
    }
}
`,
}
