// Package ifu implements a behavioral model of an instruction fetch
// unit whose coverage model is the paper's Fig. 5 cross product: 256
// events over entry(0-7) x thread(0-3) x sector(0-3) x branch(0-1).
//
// The model substitutes for the proprietary IBM IFU (DESIGN.md,
// substitution table). Two structural properties matter:
//
//   - an event is hit when a fetch lands in a given fetch-queue entry,
//     for a given thread, from a given address sector, with or without a
//     branch — so coverage requires steering four orthogonal stimuli
//     dimensions at once;
//   - the fetch engine's flow control refuses to fetch into a queue
//     already holding 7 entries, so entry-7 events can never be hit.
//     Those 32 events reproduce the paper's finding that a whole slice of
//     a cross product can be beyond the unit's capabilities, which
//     AS-CDG surfaces rather than hides (Section V).
package ifu

import (
	"fmt"

	"repro/internal/coverage"
	"repro/internal/duv"
	"repro/internal/generator"
	"repro/internal/template"
)

// Model constants.
const (
	simCycles  = 1600
	numEntries = 8 // queue entries per thread (entry 7 unreachable)
	numThreads = 4
	numSectors = 4
	fetchStop  = 7 // flow control: no fetch when occupancy >= fetchStop
)

// CrossName is the registered name of the cross product.
const CrossName = "ifu"

// UnitName is the registry name of this unit.
const UnitName = "ifu"

func init() {
	duv.Register(UnitName, func() duv.DUV { return New() })
}

// IFU is the behavioral fetch-unit model. One instance is safe for
// concurrent Simulate calls.
type IFU struct {
	model    *coverage.Model
	defaults generator.Defaults
	base     []*template.Template
	cross    *coverage.CrossProduct

	// crossIDs[entry][thread][sector][branch] -> event ID.
	crossIDs                           [numEntries][numThreads][numSectors][2]int
	evRedirect, evQueueHigh, evStarved int
}

// New constructs the IFU model.
func New() *IFU {
	dims := []coverage.Dim{
		{Name: "entry", Values: values("e", numEntries)},
		{Name: "thread", Values: values("t", numThreads)},
		{Name: "sector", Values: values("s", numSectors)},
		{Name: "branch", Values: []string{"seq", "br"}},
	}
	cp, err := coverage.NewCrossProduct(CrossName, dims)
	if err != nil {
		panic(err)
	}
	names := cp.EventNames()
	names = append(names, "ifu_redirect_seen", "ifu_queue_high", "ifu_thread_starved")
	m := coverage.MustModel(names)
	if err := m.AddCross(cp); err != nil {
		panic(err)
	}

	u := &IFU{model: m, cross: cp}
	for e := 0; e < numEntries; e++ {
		for t := 0; t < numThreads; t++ {
			for s := 0; s < numSectors; s++ {
				for b := 0; b < 2; b++ {
					u.crossIDs[e][t][s][b] = m.MustLookup(cp.EventName([]int{e, t, s, b}))
				}
			}
		}
	}
	u.evRedirect = m.MustLookup("ifu_redirect_seen")
	u.evQueueHigh = m.MustLookup("ifu_queue_high")
	u.evStarved = m.MustLookup("ifu_thread_starved")

	u.defaults = duv.DefaultsFromTemplate(duv.MustParseTemplates(defaultsSource)[0])
	u.base = duv.MustParseTemplates(baseSources...)
	return u
}

func values(prefix string, n int) []string {
	vs := make([]string, n)
	for i := range vs {
		vs[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return vs
}

// Name implements duv.DUV.
func (u *IFU) Name() string { return UnitName }

// Model implements duv.DUV.
func (u *IFU) Model() *coverage.Model { return u.model }

// Cross returns the unit's cross product definition.
func (u *IFU) Cross() *coverage.CrossProduct { return u.cross }

// Defaults implements duv.DUV.
func (u *IFU) Defaults() generator.Defaults { return u.defaults }

// BaseTemplates implements duv.DUV.
func (u *IFU) BaseTemplates() []*template.Template {
	out := make([]*template.Template, len(u.base))
	for i, t := range u.base {
		out[i] = t.Clone()
	}
	return out
}

// Simulate implements duv.DUV.
func (u *IFU) Simulate(g *generator.Generator) coverage.Vector {
	v := coverage.NewVectorFor(u.model)
	r := g.RNG()

	var occ [numThreads]int // fetch queue occupancy per thread
	dispatchThread := 0     // round-robin dispatch pointer
	dispatchWait := 0
	starvedRun := 0

	for cycle := 0; cycle < simCycles; cycle++ {
		// Fetch stage: one fetch attempt per cycle on a chosen thread.
		thread := int(g.PickValue("ThreadSel")[1] - '0')
		if occ[thread] < fetchStop {
			addr := g.PickInt("FetchAddr")
			sector := (addr >> 14) & 3
			branch := 0
			if g.PickValue("BranchMix") == "br" {
				branch = 1
			}
			entry := occ[thread]
			v.Set(u.crossIDs[entry][thread][sector][branch])
			occ[thread]++
			if occ[thread] >= 6 {
				v.Set(u.evQueueHigh)
			}

			// A branch may redirect the front end, flushing the queue of
			// the fetching thread.
			if branch == 1 && r.Intn(100) < g.PickInt("RedirectRate") {
				v.Set(u.evRedirect)
				occ[thread] = 0
			}
			starvedRun = 0
		} else {
			starvedRun++
			if starvedRun >= 32 {
				v.Set(u.evStarved)
			}
		}

		// Dispatch stage: a 2-wide dispatch fires every 1+DispatchStall
		// cycles, draining the next non-empty threads round-robin. At
		// zero stall, dispatch bandwidth (2/cycle) exceeds the fetch
		// bandwidth (1/cycle), so queues only build up under stall
		// pressure.
		if dispatchWait > 0 {
			dispatchWait--
		} else {
			for slot := 0; slot < 2; slot++ {
				for i := 0; i < numThreads; i++ {
					t := (dispatchThread + i) % numThreads
					if occ[t] > 0 {
						occ[t]--
						dispatchThread = (t + 1) % numThreads
						break
					}
				}
			}
			dispatchWait = g.PickInt("DispatchStall")
		}
	}
	return v
}

// defaultsSource declares the unit's default parameter behavior. The
// default thread selection is heavily biased toward thread 0 and the
// default fetch window covers only the first address sector — everyday
// regression traffic therefore leaves most of the cross product dark.
const defaultsSource = `
template ifu_defaults {
    weight ThreadSel {
        t0: 70;
        t1: 10;
        t2: 10;
        t3: 10;
    }
    range FetchAddr [0 : 16383];
    weight BranchMix {
        seq: 80;
        br:  20;
    }
    range DispatchStall [0 : 1];
    range RedirectRate [20 : 40];
}
`

// baseSources is the unit's pre-existing regression suite.
var baseSources = []string{
	`
template ifu_regress_default {
    weight ThreadSel {
        t0: 70;
        t1: 10;
        t2: 10;
        t3: 10;
    }
}
`, `
template ifu_thread0_focus {
    weight ThreadSel {
        t0: 100;
        t1: 0;
        t2: 0;
        t3: 0;
    }
    range FetchAddr [0 : 16383];
}
`, `
template ifu_branchy {
    weight BranchMix {
        seq: 30;
        br:  70;
    }
    range RedirectRate [40 : 60];
}
`, `
template ifu_smt_balance {
    weight ThreadSel {
        t0: 25;
        t1: 25;
        t2: 25;
        t3: 25;
    }
    range FetchAddr [0 : 65535];
    weight BranchMix {
        seq: 60;
        br:  40;
    }
    range DispatchStall [0 : 1];
    range RedirectRate [5 : 20];
}
`, `
template ifu_backpressure {
    range DispatchStall [2 : 6];
    range RedirectRate [0 : 10];
}
`,
}
