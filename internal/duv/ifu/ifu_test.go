package ifu

import (
	"fmt"
	"testing"

	"repro/internal/coverage"
	"repro/internal/generator"
	"repro/internal/rng"
	"repro/internal/template"
)

func runMany(u *IFU, tmpl *template.Template, n int, seed uint64) *coverage.Counts {
	c := coverage.NewCountsFor(u.Model())
	base := rng.New(seed)
	for i := 0; i < n; i++ {
		g := generator.New(tmpl, u.Defaults(), base.SplitIndex(uint64(i)).Uint64())
		c.Add(u.Simulate(g))
	}
	return c
}

// optimalTemplate pushes the queue deep on all threads and sectors:
// balanced threads, full address range, heavy dispatch stalls, no
// redirects.
func optimalTemplate(t *testing.T) *template.Template {
	t.Helper()
	tmpl, err := template.Parse(`
template ifu_optimal {
    weight ThreadSel {
        t0: 25;
        t1: 25;
        t2: 25;
        t3: 25;
    }
    range FetchAddr [0 : 65535];
    weight BranchMix {
        seq: 50;
        br:  50;
    }
    range DispatchStall [4 : 6];
    range RedirectRate [0 : 2];
}
`)
	if err != nil {
		t.Fatal(err)
	}
	return tmpl
}

func crossStatusCounts(u *IFU, c *coverage.Counts) map[coverage.Status]int {
	ids := make([]int, 0, u.Cross().Size())
	for _, name := range u.Cross().EventNames() {
		ids = append(ids, u.Model().MustLookup(name))
	}
	return c.StatusCounts(ids)
}

func TestModelShape(t *testing.T) {
	u := New()
	if u.Cross().Size() != 256 {
		t.Fatalf("cross size = %d, want 256", u.Cross().Size())
	}
	if u.Model().Size() != 259 {
		t.Fatalf("model size = %d, want 259", u.Model().Size())
	}
	cp, ok := u.Model().Cross(CrossName)
	if !ok || cp != u.Cross() {
		t.Fatal("cross not registered on the model")
	}
	for _, b := range u.BaseTemplates() {
		if err := b.Validate(); err != nil {
			t.Errorf("base template %q invalid: %v", b.Name, err)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	u := New()
	for i := 0; i < 5; i++ {
		g1 := generator.New(nil, u.Defaults(), uint64(i))
		g2 := generator.New(nil, u.Defaults(), uint64(i))
		if !u.Simulate(g1).Equal(u.Simulate(g2)) {
			t.Fatalf("seed %d: not deterministic", i)
		}
	}
}

func TestEntry7Unhittable(t *testing.T) {
	u := New()
	c := runMany(u, optimalTemplate(t), 500, 9)
	m := u.Model()
	for _, name := range u.Cross().EventNames() {
		coords, err := u.Cross().Coords(name)
		if err != nil {
			t.Fatal(err)
		}
		if coords[0] == 7 && c.Hits(m.MustLookup(name)) != 0 {
			t.Fatalf("entry7 event %s was hit; flow control broken", name)
		}
	}
}

func TestDeepEntriesReachableUnderPressure(t *testing.T) {
	u := New()
	c := runMany(u, optimalTemplate(t), 300, 10)
	m := u.Model()
	hit6 := 0
	for th := 0; th < 4; th++ {
		for s := 0; s < 4; s++ {
			for _, b := range []string{"seq", "br"} {
				name := fmt.Sprintf("ifu_e6_t%d_s%d_%s", th, s, b)
				if c.Hits(m.MustLookup(name)) > 0 {
					hit6++
				}
			}
		}
	}
	if hit6 < 16 {
		t.Errorf("only %d of 32 entry6 events hit under pressure stimuli", hit6)
	}
}

func TestDefaultTrafficLeavesCrossMostlyDark(t *testing.T) {
	u := New()
	c := runMany(u, nil, 400, 11)
	sc := crossStatusCounts(u, c)
	if sc[coverage.StatusNever] < 64 {
		t.Errorf("default traffic covers too much: status counts %v", sc)
	}
	if sc[coverage.StatusWell]+sc[coverage.StatusLightly] < 16 {
		t.Errorf("default traffic covers too little: %v", sc)
	}
}

func TestThreadBiasShowsInCoverage(t *testing.T) {
	u := New()
	c := runMany(u, nil, 300, 12)
	m := u.Model()
	// Default thread mix is 70% t0: deep entries on t3 should be darker
	// than on t0.
	t0 := c.Hits(m.MustLookup("ifu_e4_t0_s0_seq"))
	t3 := c.Hits(m.MustLookup("ifu_e4_t3_s0_seq"))
	if t3 > t0 {
		t.Errorf("thread bias not visible: e4_t0=%d e4_t3=%d", t0, t3)
	}
}

func TestSectorsNeedWideAddressRange(t *testing.T) {
	u := New()
	c := runMany(u, nil, 300, 13)
	m := u.Model()
	// Default FetchAddr covers only sector 0 (addr < 16384).
	for s := 1; s < 4; s++ {
		name := fmt.Sprintf("ifu_e0_t0_s%d_seq", s)
		if c.Hits(m.MustLookup(name)) != 0 {
			t.Errorf("%s hit despite narrow default fetch window", name)
		}
	}
	if c.Hits(m.MustLookup("ifu_e0_t0_s0_seq")) == 0 {
		t.Error("sector 0 not covered at all")
	}
}

func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report skipped in -short")
	}
	u := New()
	report := func(name string, tmpl *template.Template, seed uint64) {
		c := runMany(u, tmpl, 400, seed)
		sc := crossStatusCounts(u, c)
		t.Logf("%s: never=%d lightly=%d well=%d",
			name, sc[coverage.StatusNever], sc[coverage.StatusLightly], sc[coverage.StatusWell])
	}
	report("defaults", nil, 1)
	for i, b := range u.BaseTemplates() {
		report(b.Name, b, uint64(100+i))
	}
	report("hand_optimal", optimalTemplate(t), 999)
}
