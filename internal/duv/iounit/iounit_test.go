package iounit

import (
	"fmt"

	"testing"

	"repro/internal/coverage"
	"repro/internal/generator"
	"repro/internal/rng"
	"repro/internal/template"
)

// runMany simulates n instances of tmpl (nil = defaults only) and
// returns the aggregate.
func runMany(u *IOUnit, tmpl *template.Template, n int, seed uint64) *coverage.Counts {
	c := coverage.NewCountsFor(u.Model())
	base := rng.New(seed)
	for i := 0; i < n; i++ {
		g := generator.New(tmpl, u.Defaults(), base.SplitIndex(uint64(i)).Uint64())
		c.Add(u.Simulate(g))
	}
	return c
}

func findBase(t *testing.T, u *IOUnit, name string) *template.Template {
	t.Helper()
	for _, b := range u.BaseTemplates() {
		if b.Name == name {
			return b
		}
	}
	t.Fatalf("base template %q not found", name)
	return nil
}

// optimalTemplate is a hand-built near-ideal template: all-CRC traffic,
// maximum bursts, zero gaps. The optimizer should discover something
// like it; the unit tests use it to verify the deep family levels are
// reachable at all.
func optimalTemplate(t *testing.T) *template.Template {
	t.Helper()
	tmpl, err := template.Parse(`
template io_optimal {
    weight Command {
        dma_read:  0;
        dma_write: 0;
        crc:       100;
        interrupt: 0;
        nop:       0;
    }
    weight BurstLen {
        [25:32]: 100;
        [1:24]:  0;
    }
    weight Gap {
        [0:1]:  100;
        [2:31]: 0;
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	return tmpl
}

func TestModelShape(t *testing.T) {
	u := New()
	if u.Name() != UnitName {
		t.Fatalf("Name = %q", u.Name())
	}
	if u.Model().Size() < 30 {
		t.Fatalf("model has only %d events", u.Model().Size())
	}
	fam, ok := u.Model().Family(FamilyName)
	if !ok || len(fam) != 6 {
		t.Fatalf("crc family = %v, %v", fam, ok)
	}
	if len(u.BaseTemplates()) < 5 {
		t.Fatalf("base suite too small: %d", len(u.BaseTemplates()))
	}
	for _, b := range u.BaseTemplates() {
		if err := b.Validate(); err != nil {
			t.Errorf("base template %q invalid: %v", b.Name, err)
		}
	}
}

func TestBaseTemplatesAreClones(t *testing.T) {
	u := New()
	a := u.BaseTemplates()
	a[0].Name = "mutated"
	b := u.BaseTemplates()
	if b[0].Name == "mutated" {
		t.Fatal("BaseTemplates must return independent clones")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	u := New()
	tmpl := findBase(t, u, "io_crc_stress")
	for i := 0; i < 5; i++ {
		g1 := generator.New(tmpl, u.Defaults(), uint64(i))
		g2 := generator.New(tmpl, u.Defaults(), uint64(i))
		if !u.Simulate(g1).Equal(u.Simulate(g2)) {
			t.Fatalf("seed %d: simulation not deterministic", i)
		}
	}
}

func TestFamilyGradientIsMonotone(t *testing.T) {
	// Within any aggregate, deeper occupancy events can never be hit more
	// often than shallower ones (threshold events are nested).
	u := New()
	for _, tmpl := range []*template.Template{nil, findBase(t, u, "io_crc_stress"), optimalTemplate(t)} {
		c := runMany(u, tmpl, 300, 42)
		fam, _ := u.Model().Family(FamilyName)
		for i := 1; i < len(fam); i++ {
			if c.Hits(fam[i]) > c.Hits(fam[i-1]) {
				t.Fatalf("gradient violated at %s: %d > %d",
					u.Model().Name(fam[i]), c.Hits(fam[i]), c.Hits(fam[i-1]))
			}
		}
	}
}

func TestDefaultTrafficLeavesDeepLevelsUncovered(t *testing.T) {
	u := New()
	c := runMany(u, nil, 400, 7)
	m := u.Model()
	if c.Hits(m.MustLookup("crc_064")) != 0 {
		t.Errorf("crc_064 hit %d times under default traffic, want 0", c.Hits(m.MustLookup("crc_064")))
	}
	if c.Hits(m.MustLookup("crc_096")) != 0 {
		t.Errorf("crc_096 hit under default traffic")
	}
	// Shallow misc events must be exercised, or TAC has nothing to mine.
	if c.HitRate(m.MustLookup("io_cmd_crc")) < 0.5 {
		t.Errorf("io_cmd_crc rate = %v, suspiciously low", c.HitRate(m.MustLookup("io_cmd_crc")))
	}
}

func TestCRCStressBeatsDefaultOnFamily(t *testing.T) {
	u := New()
	def := runMany(u, nil, 400, 11)
	stress := runMany(u, findBase(t, u, "io_crc_stress"), 400, 12)
	m := u.Model()
	for _, ev := range []string{"crc_008", "crc_016"} {
		id := m.MustLookup(ev)
		if stress.HitRate(id) <= def.HitRate(id) {
			t.Errorf("%s: stress rate %.3f <= default rate %.3f",
				ev, stress.HitRate(id), def.HitRate(id))
		}
	}
}

func TestOptimalTemplateReachesDeepLevels(t *testing.T) {
	u := New()
	c := runMany(u, optimalTemplate(t), 400, 13)
	m := u.Model()
	r64 := c.HitRate(m.MustLookup("crc_064"))
	r96 := c.HitRate(m.MustLookup("crc_096"))
	if r64 < 0.05 {
		t.Errorf("crc_064 rate = %.3f under optimal stimuli, want >= 0.05", r64)
	}
	if r96 == 0 {
		t.Logf("crc_096 not reached in 400 sims (rate target ~5%%); acceptable but tight")
	}
	if r96 > 0.5 {
		t.Errorf("crc_096 rate = %.3f: deep level too easy, pushback miscalibrated", r96)
	}
	t.Logf("optimal rates: crc_032=%.3f crc_064=%.3f crc_096=%.3f",
		c.HitRate(m.MustLookup("crc_032")), r64, r96)
}

// TestCalibrationReport prints the family rates for every base template
// plus the hand-optimal template; run with -v to inspect calibration.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report skipped in -short")
	}
	u := New()
	m := u.Model()
	fam, _ := m.Family(FamilyName)
	report := func(name string, tmpl *template.Template, n int, seed uint64) {
		c := runMany(u, tmpl, n, seed)
		line := name + ":"
		for _, id := range fam {
			line += " " + m.Name(id) + "=" + formatRate(c.HitRate(id))
		}
		t.Log(line)
	}
	report("defaults", nil, 500, 1)
	for i, b := range u.BaseTemplates() {
		report(b.Name, b, 500, uint64(100+i))
	}
	report("hand_optimal", optimalTemplate(t), 500, 999)
}

func formatRate(r float64) string {
	switch {
	case r == 0:
		return "0"
	case r < 0.001:
		return "<0.1%"
	default:
		return fmt.Sprintf("%.1f%%", r*100)
	}
}
