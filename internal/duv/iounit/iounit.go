// Package iounit implements a behavioral model of a processor I/O unit:
// a DMA/CRC engine whose CRC checksum FIFO gives rise to the paper's
// Fig. 3 family of buffer-utilization coverage events (crc_004 ..
// crc_096).
//
// The model substitutes for the proprietary IBM I/O unit (DESIGN.md,
// substitution table). What matters for reproducing the paper is the
// *structure* of the coverage problem, which this model preserves:
//
//   - the crc_* events form an ordered family with a descending gradient
//     of hit probability — deeper FIFO occupancies are strictly harder;
//   - occupancy responds smoothly (but noisily) to the stimuli
//     parameters: the CRC command mix, burst lengths, and inter-command
//     gaps;
//   - hardware pushback (push throttling, entry dropping, random
//     scrubbing, interrupt flushes) keeps the deepest levels rare even
//     under ideal stimuli, mirroring the paper's best-test hit rates
//     (crc_096 reaches only 6.46% there).
package iounit

import (
	"repro/internal/coverage"
	"repro/internal/duv"
	"repro/internal/generator"
	"repro/internal/template"
)

// Micro-architectural constants of the model. They were calibrated so
// that the default regression suite leaves crc_064/crc_096 uncovered
// while an optimized template reaches them with the paper's rough rates;
// see EXPERIMENTS.md.
const (
	simCycles  = 1200 // simulated cycles per test-instance
	fifoCap    = 128  // CRC FIFO capacity
	throttleAt = 56   // occupancy above which push slows to 1/cycle
	dropAt     = 80   // occupancy above which pushes are dropped randomly
	dropProb   = 0.08 // per-entry drop probability above dropAt
	drainProb  = 0.88 // per-cycle probability of draining one entry
	scrubProb  = 0.004
	scrubSize  = 8 // entries removed by a background scrub
)

// crcThresholds are the family's occupancy levels, shallow to deep.
var crcThresholds = []int{4, 8, 16, 32, 64, 96}

// FamilyName is the registered name of the crc_* event family.
const FamilyName = "crc_fifo"

// UnitName is the registry name of this unit.
const UnitName = "iounit"

func init() {
	duv.Register(UnitName, func() duv.DUV { return New() })
}

// IOUnit is the behavioral I/O unit model. It is stateless across
// simulations; all per-instance state lives in Simulate's frame, so one
// instance is safe for concurrent Simulate calls.
type IOUnit struct {
	model    *coverage.Model
	defaults generator.Defaults
	base     []*template.Template

	// Event IDs resolved once at construction.
	crcIDs   []int
	cmdSeen  map[string]int
	chUsed   [4]int
	cmdByCh  map[string][4]int
	burstIDs [4]int
	evGapZero, evGapLong,
	evPayloadSmall, evPayloadLarge,
	evIRQDuringFill, evFifoFull,
	evBack2Back, evScrubSeen, evDrainIdle int
}

// New constructs the I/O unit model.
func New() *IOUnit {
	names := []string{
		"crc_004", "crc_008", "crc_016", "crc_032", "crc_064", "crc_096",
	}
	cmds := []string{"dma_read", "dma_write", "crc", "interrupt", "nop"}
	for _, c := range cmds {
		names = append(names, "io_cmd_"+c)
	}
	for ch := 0; ch < 4; ch++ {
		names = append(names, "io_ch"+string(rune('0'+ch))+"_used")
	}
	for _, c := range []string{"read", "write"} {
		for ch := 0; ch < 4; ch++ {
			names = append(names, "io_"+c+"_ch"+string(rune('0'+ch)))
		}
	}
	names = append(names,
		"io_burst_1_4", "io_burst_5_8", "io_burst_9_16", "io_burst_17_32",
		"io_gap_zero", "io_gap_long",
		"io_payload_small", "io_payload_large",
		"io_irq_during_fill", "io_fifo_full",
		"io_back2back_crc", "io_scrub_seen", "io_drain_idle",
	)
	m := coverage.MustModel(names)
	famNames := []string{"crc_004", "crc_008", "crc_016", "crc_032", "crc_064", "crc_096"}
	if err := m.AddFamily(FamilyName, famNames); err != nil {
		panic(err)
	}

	u := &IOUnit{
		model:   m,
		cmdSeen: map[string]int{},
		cmdByCh: map[string][4]int{},
	}
	for _, fn := range famNames {
		u.crcIDs = append(u.crcIDs, m.MustLookup(fn))
	}
	for _, c := range cmds {
		u.cmdSeen[c] = m.MustLookup("io_cmd_" + c)
	}
	for ch := 0; ch < 4; ch++ {
		u.chUsed[ch] = m.MustLookup("io_ch" + string(rune('0'+ch)) + "_used")
	}
	for _, c := range []string{"read", "write"} {
		var ids [4]int
		for ch := 0; ch < 4; ch++ {
			ids[ch] = m.MustLookup("io_" + c + "_ch" + string(rune('0'+ch)))
		}
		u.cmdByCh[c] = ids
	}
	for i, n := range []string{"io_burst_1_4", "io_burst_5_8", "io_burst_9_16", "io_burst_17_32"} {
		u.burstIDs[i] = m.MustLookup(n)
	}
	u.evGapZero = m.MustLookup("io_gap_zero")
	u.evGapLong = m.MustLookup("io_gap_long")
	u.evPayloadSmall = m.MustLookup("io_payload_small")
	u.evPayloadLarge = m.MustLookup("io_payload_large")
	u.evIRQDuringFill = m.MustLookup("io_irq_during_fill")
	u.evFifoFull = m.MustLookup("io_fifo_full")
	u.evBack2Back = m.MustLookup("io_back2back_crc")
	u.evScrubSeen = m.MustLookup("io_scrub_seen")
	u.evDrainIdle = m.MustLookup("io_drain_idle")

	u.defaults = duv.DefaultsFromTemplate(duv.MustParseTemplates(defaultsSource)[0])
	u.base = duv.MustParseTemplates(baseSources...)
	return u
}

// Name implements duv.DUV.
func (u *IOUnit) Name() string { return UnitName }

// Model implements duv.DUV.
func (u *IOUnit) Model() *coverage.Model { return u.model }

// Defaults implements duv.DUV.
func (u *IOUnit) Defaults() generator.Defaults { return u.defaults }

// BaseTemplates implements duv.DUV.
func (u *IOUnit) BaseTemplates() []*template.Template {
	out := make([]*template.Template, len(u.base))
	for i, t := range u.base {
		out[i] = t.Clone()
	}
	return out
}

// Simulate implements duv.DUV: it drives the unit for simCycles cycles
// with stimuli drawn from g and returns the coverage vector.
func (u *IOUnit) Simulate(g *generator.Generator) coverage.Vector {
	v := coverage.NewVectorFor(u.model)
	r := g.RNG()

	occ := 0      // CRC FIFO occupancy
	maxOcc := 0   // high-water mark
	pushLeft := 0 // CRC entries still to push for the current burst
	busyLeft := 0 // cycles the current non-CRC command still occupies
	gapLeft := 0  // idle cycles before the next command
	lastWasCRC := false
	idleRun := 0 // consecutive cycles at zero occupancy
	wasNonEmpty := false

	for cycle := 0; cycle < simCycles; cycle++ {
		// Start a new command when the engine is free.
		if pushLeft == 0 && busyLeft == 0 && gapLeft == 0 {
			cmd := g.PickValue("Command")
			v.Set(u.cmdSeen[cmd])
			ch := int(g.PickValue("Channel")[2] - '0') // "ch0".."ch3"
			v.Set(u.chUsed[ch])

			switch cmd {
			case "crc":
				burst := g.PickInt("BurstLen")
				pushLeft = burst
				switch {
				case burst <= 4:
					v.Set(u.burstIDs[0])
				case burst <= 8:
					v.Set(u.burstIDs[1])
				case burst <= 16:
					v.Set(u.burstIDs[2])
				default:
					v.Set(u.burstIDs[3])
				}
				if lastWasCRC {
					v.Set(u.evBack2Back)
				}
				lastWasCRC = true
			case "dma_read", "dma_write":
				payload := g.PickInt("PayloadSize")
				if payload <= 16 {
					v.Set(u.evPayloadSmall)
				}
				if payload >= 49 {
					v.Set(u.evPayloadLarge)
				}
				busyLeft = 2 + payload/32
				kind := "read"
				if cmd == "dma_write" {
					kind = "write"
				}
				v.Set(u.cmdByCh[kind][ch])
				lastWasCRC = false
			case "interrupt":
				if occ > 8 {
					v.Set(u.evIRQDuringFill)
				}
				occ = 0 // interrupt handler flushes the CRC FIFO
				busyLeft = 4
				lastWasCRC = false
			default: // nop
				busyLeft = 1
				lastWasCRC = false
			}

			gap := g.PickInt("Gap")
			gapLeft = gap
			if gap == 0 {
				v.Set(u.evGapZero)
			}
			if gap > 24 {
				v.Set(u.evGapLong)
			}
		}

		// Advance the engine by one cycle.
		switch {
		case pushLeft > 0:
			// CRC burst in flight: push entries, with hardware pushback.
			rate := 2
			if occ >= throttleAt {
				rate = 1
			}
			for i := 0; i < rate && pushLeft > 0; i++ {
				pushLeft--
				if occ >= dropAt && r.Bool(dropProb) {
					continue // entry dropped by backpressure
				}
				if occ < fifoCap {
					occ++
				} else {
					v.Set(u.evFifoFull)
				}
			}
		case busyLeft > 0:
			busyLeft--
		case gapLeft > 0:
			gapLeft--
		}

		// Background drain and scrub.
		if occ > 0 && r.Bool(drainProb) {
			occ--
		}
		if r.Bool(scrubProb) && occ > 0 {
			v.Set(u.evScrubSeen)
			occ -= scrubSize
			if occ < 0 {
				occ = 0
			}
		}

		if occ > maxOcc {
			maxOcc = occ
		}
		if occ == 0 {
			if wasNonEmpty {
				idleRun++
				if idleRun >= 64 {
					v.Set(u.evDrainIdle)
				}
			}
		} else {
			wasNonEmpty = true
			idleRun = 0
		}
	}

	for i, th := range crcThresholds {
		if maxOcc >= th {
			v.Set(u.crcIDs[i])
		}
	}
	return v
}

// defaultsSource declares the unit's default parameter behavior in the
// template language.
const defaultsSource = `
template io_defaults {
    weight Command {
        dma_read:  30;
        dma_write: 30;
        crc:       10;
        interrupt: 5;
        nop:       25;
    }
    range BurstLen [1 : 8];
    range Gap [0 : 31];
    weight Channel {
        ch0: 25;
        ch1: 25;
        ch2: 25;
        ch3: 25;
    }
    range PayloadSize [1 : 64];
}
`

// baseSources is the unit's pre-existing regression suite: templates a
// verification team would plausibly have written for everyday goals.
// io_crc_stress is the one that best exercises the CRC FIFO; the
// coarse-grained search is expected to discover that from TAC statistics
// rather than being told.
var baseSources = []string{
	`
template io_regress_default {
    weight Command {
        dma_read:  35;
        dma_write: 35;
        crc:       10;
        interrupt: 5;
        nop:       15;
    }
}
`, `
template io_read_heavy {
    weight Command {
        dma_read:  70;
        dma_write: 10;
        crc:       5;
        interrupt: 5;
        nop:       10;
    }
    range PayloadSize [32 : 64];
}
`, `
template io_write_heavy {
    weight Command {
        dma_read:  10;
        dma_write: 70;
        crc:       5;
        interrupt: 5;
        nop:       10;
    }
    range PayloadSize [32 : 64];
}
`, `
template io_interrupt_storm {
    weight Command {
        dma_read:  20;
        dma_write: 20;
        crc:       5;
        interrupt: 40;
        nop:       15;
    }
    range Gap [0 : 7];
}
`, `
template io_crc_stress {
    weight Command {
        dma_read:  25;
        dma_write: 25;
        crc:       30;
        interrupt: 5;
        nop:       15;
    }
    range BurstLen [1 : 32];
    range Gap [0 : 31];
}
`, `
template io_mixed_burst {
    weight Command {
        dma_read:  25;
        dma_write: 25;
        crc:       20;
        interrupt: 5;
        nop:       25;
    }
    range BurstLen [1 : 16];
    range Gap [0 : 7];
    range PayloadSize [1 : 32];
}
`,
}
