package duv_test

import (
	"testing"

	"repro/internal/duv"
	_ "repro/internal/duv/ifu"
	_ "repro/internal/duv/iounit"
	_ "repro/internal/duv/l3cache"
	_ "repro/internal/duv/noc"
	"repro/internal/template"
)

func TestRegistryHasBuiltinUnits(t *testing.T) {
	names := duv.Names()
	want := []string{"ifu", "iounit", "l3cache", "noc"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestNewConstructsEachUnit(t *testing.T) {
	for _, name := range duv.Names() {
		u, err := duv.New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if u.Name() != name {
			t.Errorf("unit %q reports name %q", name, u.Name())
		}
		if u.Model().Size() == 0 {
			t.Errorf("unit %q has empty model", name)
		}
		if len(u.Defaults()) == 0 {
			t.Errorf("unit %q has no defaults", name)
		}
		if len(u.BaseTemplates()) == 0 {
			t.Errorf("unit %q has no base suite", name)
		}
	}
}

func TestNewUnknownUnit(t *testing.T) {
	if _, err := duv.New("nonexistent"); err == nil {
		t.Fatal("unknown unit should fail")
	}
}

func TestDefaultsFromTemplate(t *testing.T) {
	tmpl, err := template.Parse("template d { range R [1:2]; weight W { a: 1; } }")
	if err != nil {
		t.Fatal(err)
	}
	d := duv.DefaultsFromTemplate(tmpl)
	if len(d) != 2 {
		t.Fatalf("defaults = %v", d)
	}
	if _, ok := d["R"]; !ok {
		t.Fatal("R missing")
	}
}

func TestMustParseTemplatesPanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad source should panic")
		}
	}()
	duv.MustParseTemplates("garbage")
}
