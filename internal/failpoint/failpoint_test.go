package failpoint

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
	}{
		{"error", Policy{Kind: KindError, Rate: 1}},
		{"drop", Policy{Kind: KindDrop, Rate: 1}},
		{"panic", Policy{Kind: KindPanic, Rate: 1}},
		{"corrupt", Policy{Kind: KindCorrupt, Rate: 1}},
		{"corrupt:0.5", Policy{Kind: KindCorrupt, Rate: 0.5}},
		{"error:1:3", Policy{Kind: KindError, Rate: 1, Times: 3}},
		{"delay(250ms)", Policy{Kind: KindDelay, Delay: 250 * time.Millisecond, Rate: 1}},
		{"delay(1s):0.25:2", Policy{Kind: KindDelay, Delay: time.Second, Rate: 0.25, Times: 2}},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParsePolicy(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// String must round-trip through the same grammar.
		back, err := ParsePolicy(got.String())
		if err != nil || back != got {
			t.Errorf("round-trip of %q via %q failed: %+v, %v", c.in, got.String(), back, err)
		}
	}
	for _, bad := range []string{
		"", "explode", "delay", "delay(x)", "delay(-1s)", "error(5)",
		"error:0", "error:2", "error:1:-1", "error:1:0", "error:nope",
		"delay(1s",
	} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q): expected error", bad)
		}
	}
}

func TestConfigureAndSnapshot(t *testing.T) {
	r := New(7)
	spec := "farm/serve_chunk=corrupt:0.5, journal/append=error:1:2,seed=42"
	if err := r.Configure(spec); err != nil {
		t.Fatal(err)
	}
	if !r.Armed() {
		t.Fatal("registry should be armed")
	}
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d points, want 2: %+v", len(snap), snap)
	}
	if snap[0].Name != "farm/serve_chunk" || snap[0].Policy != "corrupt:0.5" {
		t.Errorf("snapshot[0] = %+v", snap[0])
	}
	if snap[1].Name != "journal/append" || snap[1].Policy != "error:1:2" {
		t.Errorf("snapshot[1] = %+v", snap[1])
	}
	for _, bad := range []string{"nope", "=error", "x=", "x=explode", "seed=abc"} {
		if err := New(1).Configure(bad); err == nil {
			t.Errorf("Configure(%q): expected error", bad)
		}
	}
	// Empty spec is a no-op.
	if err := New(1).Configure("  "); err != nil {
		t.Fatal(err)
	}
}

func TestDisarmedIsNoop(t *testing.T) {
	r := New(1)
	if err := r.Eval("anything"); err != nil {
		t.Fatal(err)
	}
	b := []byte{1, 2, 3}
	if err := r.Bytes("anything", b); err != nil || b[0] != 1 || b[1] != 2 || b[2] != 3 {
		t.Fatalf("disarmed Bytes mutated payload: %v %v", b, err)
	}
	// nil registry is equally safe.
	var nilr *Registry
	if err := nilr.Eval("x"); err != nil {
		t.Fatal(err)
	}
	nilr.Set("x", Policy{Kind: KindError})
	nilr.Reset()
	if nilr.Armed() || nilr.Fired("x") != 0 || nilr.Snapshot() != nil {
		t.Fatal("nil registry should be inert")
	}
	if allocs := testing.AllocsPerRun(100, func() { r.Eval("hot/path") }); allocs != 0 {
		t.Errorf("disarmed Eval allocates %v times per call", allocs)
	}
}

func TestErrorDropAndTimes(t *testing.T) {
	r := New(1)
	r.Set("p", Policy{Kind: KindError, Times: 2})
	for i := 0; i < 2; i++ {
		err := r.Eval("p")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("firing %d: got %v", i, err)
		}
		if !strings.Contains(err.Error(), "at p") {
			t.Fatalf("error should name the point: %v", err)
		}
	}
	if err := r.Eval("p"); err != nil {
		t.Fatalf("times budget spent, want nil, got %v", err)
	}
	if got := r.Fired("p"); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}

	r.Set("d", Policy{Kind: KindDrop})
	err := r.Eval("d")
	if !errors.Is(err, ErrDropped) || !errors.Is(err, ErrInjected) {
		t.Fatalf("drop should wrap both sentinels: %v", err)
	}
}

func TestDelay(t *testing.T) {
	r := New(1)
	r.Set("slow", Policy{Kind: KindDelay, Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := r.Eval("slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay policy slept only %v", d)
	}
}

func TestPanicPolicy(t *testing.T) {
	r := New(1)
	r.Set("boom", Policy{Kind: KindPanic})
	defer func() {
		if recover() == nil {
			t.Fatal("expected injected panic")
		}
	}()
	r.Eval("boom")
}

func TestCorruptMutatesDeterministically(t *testing.T) {
	run := func(seed int64) ([]byte, []uint64) {
		r := New(seed)
		r.Set("b", Policy{Kind: KindCorrupt})
		r.Set("u", Policy{Kind: KindCorrupt})
		b := []byte{0, 0, 0, 0, 0, 0, 0, 0}
		u := []uint64{0, 0, 0, 0}
		if err := r.Bytes("b", b); err != nil {
			t.Fatal(err)
		}
		if err := r.Uints("u", u); err != nil {
			t.Fatal(err)
		}
		return b, u
	}
	b1, u1 := run(99)
	b2, u2 := run(99)
	if string(b1) != string(b2) {
		t.Fatalf("byte corruption not deterministic: %v vs %v", b1, b2)
	}
	changedB, changedU := false, false
	for i := range b1 {
		if b1[i] != 0 {
			changedB = true
		}
		if u1[i%len(u1)] != u2[i%len(u2)] {
			t.Fatalf("uint corruption not deterministic: %v vs %v", u1, u2)
		}
	}
	for _, v := range u1 {
		if v != 0 {
			changedU = true
		}
	}
	if !changedB || !changedU {
		t.Fatalf("corrupt policy must actually change the payload: %v %v", b1, u1)
	}
	// Empty payloads are tolerated.
	r := New(1)
	r.Set("b", Policy{Kind: KindCorrupt})
	if err := r.Bytes("b", nil); err != nil {
		t.Fatal(err)
	}
	// Eval at a corrupt point (nothing to corrupt) degrades to an error.
	r.Set("e", Policy{Kind: KindCorrupt})
	if err := r.Eval("e"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Eval at corrupt point: %v", err)
	}
}

func TestRateIsSeededAndReproducible(t *testing.T) {
	schedule := func(seed int64) []bool {
		r := New(seed)
		r.Set("p", Policy{Kind: KindError, Rate: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = r.Eval("p") != nil
		}
		return out
	}
	a, b := schedule(5), schedule(5)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules with the same seed diverge at %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired < 30 || fired > 90 {
		t.Fatalf("rate 0.3 over 200 evals fired %d times", fired)
	}
	c := schedule(6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestClearAndReset(t *testing.T) {
	r := New(1)
	r.Set("a", Policy{Kind: KindError})
	r.Set("b", Policy{Kind: KindError})
	r.Clear("a")
	if err := r.Eval("a"); err != nil {
		t.Fatalf("cleared point fired: %v", err)
	}
	if err := r.Eval("b"); err == nil {
		t.Fatal("surviving point should fire")
	}
	if !r.Armed() {
		t.Fatal("still one point armed")
	}
	r.Reset()
	if r.Armed() || r.Eval("b") != nil {
		t.Fatal("reset should disarm everything")
	}
}

func TestDefaultWrappers(t *testing.T) {
	defer Default.Reset()
	if err := Configure("wrapped/point=error:1:1"); err != nil {
		t.Fatal(err)
	}
	if err := Eval("wrapped/point"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Default Eval: %v", err)
	}
	if err := Eval("wrapped/point"); err != nil {
		t.Fatalf("times spent: %v", err)
	}
	if err := Bytes("other", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := Uints("other", []uint64{1}); err != nil {
		t.Fatal(err)
	}
}
