// Package failpoint is a deterministic fault-injection framework
// (DESIGN.md §13). Code under test declares named injection points
// ("farm/serve_chunk", "journal/append", ...); a test or operator arms
// a Registry with per-point policies — inject an error, delay, corrupt
// a payload, drop a message, or panic — at a given rate and for a
// bounded number of firings. Policies draw from a seeded RNG, so a
// fault schedule replays identically run-to-run: the same seed and the
// same call sequence fire the same faults at the same call sites.
//
// Points cost one atomic load while the registry is disarmed (the
// production state), so they are safe to leave in hot paths: the farm
// dispatcher threads them through dial/handshake/frame I/O, the farm
// server through chunk execution, and the journal, lease, and service
// layers through their durability and admission paths.
//
// Policies are configured programmatically (Set) or from a spec string
// (Configure), the grammar the -failpoints flag and the
// ASCDG_FAILPOINTS environment variable share:
//
//	name=kind[(arg)][:rate[:times]][,name=...]
//
// e.g. "farm/serve_chunk=corrupt:0.5,journal/append=error:1:2" corrupts
// half of all served chunk results and fails the journal's next two
// appends. "seed=N" is a reserved pair that reseeds the schedule RNG.
package failpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Injected faults are reported through these sentinels so callers (and
// tests) can tell injected failures from organic ones.
var (
	// ErrInjected is the base error every injected failure wraps.
	ErrInjected = errors.New("failpoint: injected failure")
	// ErrDropped marks a drop policy firing: the caller should discard
	// the message/result instead of failing. It wraps ErrInjected.
	ErrDropped = fmt.Errorf("%w (dropped)", ErrInjected)
)

// Kind enumerates what a policy does when it fires.
type Kind int

const (
	// KindError makes the point return ErrInjected.
	KindError Kind = iota
	// KindDelay sleeps for the policy's Delay, then succeeds — the
	// straggler-injection policy.
	KindDelay
	// KindCorrupt deterministically mutates the payload passed to
	// Bytes/Uints and succeeds — the byzantine-worker policy. At a
	// payload-less point (Eval) it degrades to KindError.
	KindCorrupt
	// KindDrop returns ErrDropped: the caller swallows the message.
	KindDrop
	// KindPanic panics — the crash-injection policy.
	KindPanic
)

var kindNames = map[Kind]string{
	KindError:   "error",
	KindDelay:   "delay",
	KindCorrupt: "corrupt",
	KindDrop:    "drop",
	KindPanic:   "panic",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Policy is one point's behavior.
type Policy struct {
	Kind Kind
	// Delay is the injected latency for KindDelay.
	Delay time.Duration
	// Rate is the per-evaluation firing probability in (0, 1]; 0 means 1
	// (always fire).
	Rate float64
	// Times bounds how often the policy fires (0: unlimited). Once spent
	// the point becomes a no-op.
	Times int
}

// String renders the policy in Configure's grammar.
func (p Policy) String() string {
	s := p.Kind.String()
	if p.Kind == KindDelay {
		s += "(" + p.Delay.String() + ")"
	}
	rate := p.Rate
	if rate == 0 {
		rate = 1
	}
	if rate != 1 || p.Times > 0 {
		s += ":" + strconv.FormatFloat(rate, 'g', -1, 64)
	}
	if p.Times > 0 {
		s += ":" + strconv.Itoa(p.Times)
	}
	return s
}

// ParsePolicy parses one policy in the kind[(arg)][:rate[:times]]
// grammar: "error", "delay(250ms)", "corrupt:0.5", "drop:1:3", "panic".
func ParsePolicy(s string) (Policy, error) {
	var p Policy
	head, tail, _ := strings.Cut(s, ":")
	name, arg := head, ""
	if i := strings.IndexByte(head, '('); i >= 0 {
		if !strings.HasSuffix(head, ")") {
			return p, fmt.Errorf("failpoint: malformed policy %q (unclosed argument)", s)
		}
		name, arg = head[:i], head[i+1:len(head)-1]
	}
	found := false
	for k, kn := range kindNames {
		if kn == name {
			p.Kind, found = k, true
			break
		}
	}
	if !found {
		return p, fmt.Errorf("failpoint: unknown policy kind %q (want error, delay, corrupt, drop or panic)", name)
	}
	switch {
	case p.Kind == KindDelay:
		if arg == "" {
			return p, fmt.Errorf("failpoint: policy %q needs a duration argument, e.g. delay(250ms)", s)
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return p, fmt.Errorf("failpoint: policy %q: bad duration %q", s, arg)
		}
		p.Delay = d
	case arg != "":
		return p, fmt.Errorf("failpoint: policy kind %q takes no argument", name)
	}
	p.Rate = 1
	if tail != "" {
		rateStr, timesStr, hasTimes := strings.Cut(tail, ":")
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil || rate <= 0 || rate > 1 {
			return p, fmt.Errorf("failpoint: policy %q: rate must be in (0, 1], got %q", s, rateStr)
		}
		p.Rate = rate
		if hasTimes {
			times, err := strconv.Atoi(timesStr)
			if err != nil || times <= 0 {
				return p, fmt.Errorf("failpoint: policy %q: times must be a positive integer, got %q", s, timesStr)
			}
			p.Times = times
		}
	}
	return p, nil
}

// point is one armed injection point.
type point struct {
	policy    Policy
	remaining int // firings left; -1 unlimited (guarded by Registry.mu)
	fired     uint64
}

// Registry holds a set of armed points plus the seeded RNG that decides
// probabilistic firings. The zero value is ready to use (seed 1) and
// disarmed. All methods are safe for concurrent use and nil-safe, so a
// component can hold an optional *Registry without guarding call sites.
type Registry struct {
	armed atomic.Bool // fast path: any point armed at all?

	mu     sync.Mutex
	rng    *rand.Rand
	points map[string]*point
}

// New returns a disarmed registry whose fault schedule is driven by the
// given RNG seed.
func New(seed int64) *Registry {
	r := &Registry{}
	r.Seed(seed)
	return r
}

// Default is the process-wide registry the -failpoints flag and
// ASCDG_FAILPOINTS configure; components that take no explicit registry
// use it.
var Default = New(1)

// Seed reseeds the registry's schedule RNG.
func (r *Registry) Seed(seed int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rng = rand.New(rand.NewSource(seed))
	r.mu.Unlock()
}

// Set arms (or re-arms) one point with a policy.
func (r *Registry) Set(name string, p Policy) {
	if r == nil || name == "" {
		return
	}
	if p.Rate == 0 {
		p.Rate = 1
	}
	r.mu.Lock()
	if r.points == nil {
		r.points = map[string]*point{}
	}
	remaining := -1
	if p.Times > 0 {
		remaining = p.Times
	}
	r.points[name] = &point{policy: p, remaining: remaining}
	r.armed.Store(true)
	r.mu.Unlock()
}

// Clear disarms one point.
func (r *Registry) Clear(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.points, name)
	r.armed.Store(len(r.points) > 0)
	r.mu.Unlock()
}

// Reset disarms every point (the RNG keeps its state).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.points = nil
	r.armed.Store(false)
	r.mu.Unlock()
}

// Configure parses a -failpoints spec ("name=policy,name=policy") and
// arms every listed point. The reserved pair "seed=N" reseeds the
// schedule RNG. An empty spec is a no-op. On error the registry is
// left unchanged.
func (r *Registry) Configure(spec string) error {
	if r == nil || strings.TrimSpace(spec) == "" {
		return nil
	}
	type armed struct {
		name string
		p    Policy
	}
	var list []armed
	var seed *int64
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" || val == "" {
			return fmt.Errorf("failpoint: malformed spec entry %q (want name=policy)", pair)
		}
		if name == "seed" {
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return fmt.Errorf("failpoint: bad seed %q", val)
			}
			seed = &n
			continue
		}
		p, err := ParsePolicy(val)
		if err != nil {
			return err
		}
		list = append(list, armed{name, p})
	}
	if seed != nil {
		r.Seed(*seed)
	}
	for _, a := range list {
		r.Set(a.name, a.p)
	}
	return nil
}

// trigger decides whether the named point fires now and, if so, returns
// its policy. One lock acquisition; rate and times accounting happen
// under it so schedules are deterministic.
func (r *Registry) trigger(name string) (Policy, bool) {
	if r == nil || !r.armed.Load() {
		return Policy{}, false
	}
	r.mu.Lock()
	p := r.points[name]
	if p == nil || p.remaining == 0 {
		r.mu.Unlock()
		return Policy{}, false
	}
	if p.policy.Rate < 1 {
		if r.rng == nil {
			r.rng = rand.New(rand.NewSource(1))
		}
		if r.rng.Float64() >= p.policy.Rate {
			r.mu.Unlock()
			return Policy{}, false
		}
	}
	if p.remaining > 0 {
		p.remaining--
	}
	p.fired++
	pol := p.policy
	r.mu.Unlock()
	return pol, true
}

// Eval evaluates a payload-less injection point: nil when disarmed or
// the policy did not fire; ErrInjected/ErrDropped, a delay, or a panic
// when it did. A corrupt policy at a payload-less point injects an
// error (there is nothing to corrupt).
func (r *Registry) Eval(name string) error {
	pol, ok := r.trigger(name)
	if !ok {
		return nil
	}
	switch pol.Kind {
	case KindDelay:
		time.Sleep(pol.Delay)
		return nil
	case KindDrop:
		return fmt.Errorf("%w at %s", ErrDropped, name)
	case KindPanic:
		panic("failpoint: injected panic at " + name)
	default: // KindError, KindCorrupt
		return fmt.Errorf("%w at %s", ErrInjected, name)
	}
}

// Bytes evaluates an injection point owning a byte payload. A corrupt
// policy flips bits in a deterministically chosen byte (guaranteeing
// the payload actually changes) and returns nil; other kinds behave as
// in Eval.
func (r *Registry) Bytes(name string, b []byte) error {
	pol, ok := r.trigger(name)
	if !ok {
		return nil
	}
	if pol.Kind != KindCorrupt {
		return r.apply(name, pol)
	}
	if len(b) == 0 {
		return nil
	}
	r.mu.Lock()
	i := r.rng.Intn(len(b))
	bit := byte(1) << uint(r.rng.Intn(8))
	r.mu.Unlock()
	b[i] ^= bit
	return nil
}

// Uints evaluates an injection point owning a uint64 payload (dense
// coverage hit arrays). A corrupt policy perturbs a deterministically
// chosen element by a nonzero delta and returns nil; other kinds behave
// as in Eval.
func (r *Registry) Uints(name string, v []uint64) error {
	pol, ok := r.trigger(name)
	if !ok {
		return nil
	}
	if pol.Kind != KindCorrupt {
		return r.apply(name, pol)
	}
	if len(v) == 0 {
		return nil
	}
	r.mu.Lock()
	i := r.rng.Intn(len(v))
	delta := uint64(1 + r.rng.Intn(1000))
	r.mu.Unlock()
	v[i] += delta
	return nil
}

// apply realizes a non-corrupt policy that already fired.
func (r *Registry) apply(name string, pol Policy) error {
	switch pol.Kind {
	case KindDelay:
		time.Sleep(pol.Delay)
		return nil
	case KindDrop:
		return fmt.Errorf("%w at %s", ErrDropped, name)
	case KindPanic:
		panic("failpoint: injected panic at " + name)
	default:
		return fmt.Errorf("%w at %s", ErrInjected, name)
	}
}

// Fired reports how many times the named point has fired.
func (r *Registry) Fired(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p := r.points[name]; p != nil {
		return p.fired
	}
	return 0
}

// PointState is one armed point's snapshot.
type PointState struct {
	Name   string `json:"name"`
	Policy string `json:"policy"`
	Fired  uint64 `json:"fired"`
}

// Snapshot lists every armed point, sorted by name — the shape banners
// and debug endpoints print.
func (r *Registry) Snapshot() []PointState {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PointState, 0, len(r.points))
	for name, p := range r.points {
		out = append(out, PointState{Name: name, Policy: p.policy.String(), Fired: p.fired})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Armed reports whether any point is armed.
func (r *Registry) Armed() bool { return r != nil && r.armed.Load() }

// Package-level wrappers over Default, for call sites without an
// explicit registry (journal, lease, service).

// Eval evaluates a point on the Default registry.
func Eval(name string) error { return Default.Eval(name) }

// Bytes evaluates a byte-payload point on the Default registry.
func Bytes(name string, b []byte) error { return Default.Bytes(name, b) }

// Uints evaluates a uint64-payload point on the Default registry.
func Uints(name string, v []uint64) error { return Default.Uints(name, v) }

// Configure arms the Default registry from a -failpoints spec.
func Configure(spec string) error { return Default.Configure(spec) }
