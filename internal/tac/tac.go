// Package tac implements Template-Aware Coverage: first-order statistics
// on the coverage achieved by each test-template, and the queries the
// coarse-grained search of AS-CDG issues against them (paper Section
// IV-B, ref [3]).
//
// TAC answers one question for the flow: given the (approximated) target
// events, which existing test-templates hit them best? The parameters of
// those templates are the ones the fine-grained search then tunes.
package tac

import (
	"fmt"
	"sort"

	"repro/internal/coverage"
)

// Stats provides TAC queries over a coverage repository.
type Stats struct {
	repo *coverage.Repository
}

// New wraps a repository in the TAC query interface.
func New(repo *coverage.Repository) *Stats {
	return &Stats{repo: repo}
}

// Repository returns the underlying coverage repository.
func (s *Stats) Repository() *coverage.Repository { return s.repo }

// HitProbability returns the empirical probability that a test-instance
// generated from the named template hits the event — the per-template
// statistic TAC maintains. It returns 0 for unknown templates.
func (s *Stats) HitProbability(templateName string, event int) float64 {
	c, ok := s.repo.Template(templateName)
	if !ok {
		return 0
	}
	return c.HitRate(event)
}

// TemplateScore is one template's score under a TAC query.
type TemplateScore struct {
	Name  string
	Score float64
	Sims  uint64
}

// BestTemplates returns the best n templates for hitting the given
// events, weighted by weights (nil = uniform). The score of a template
// is the weighted sum of its per-event hit probabilities — the same
// functional form as the approximated target, so the coarse and fine
// searches optimize a consistent quantity. Templates with no recorded
// simulations are skipped; ties break lexicographically for determinism.
func (s *Stats) BestTemplates(events []int, weights []float64, n int) ([]TemplateScore, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("tac: no target events given")
	}
	if weights != nil && len(weights) != len(events) {
		return nil, fmt.Errorf("tac: %d weights for %d events", len(weights), len(events))
	}
	var scores []TemplateScore
	for _, name := range s.repo.TemplateNames() {
		c, _ := s.repo.Template(name)
		if c.Sims() == 0 {
			continue
		}
		score := 0.0
		for i, e := range events {
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			score += w * c.HitRate(e)
		}
		scores = append(scores, TemplateScore{Name: name, Score: score, Sims: c.Sims()})
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].Score != scores[j].Score {
			return scores[i].Score > scores[j].Score
		}
		return scores[i].Name < scores[j].Name
	})
	if n > 0 && len(scores) > n {
		scores = scores[:n]
	}
	return scores, nil
}

// EventTemplates returns every template that hit the event at least
// once, best hit probability first.
func (s *Stats) EventTemplates(event int) []TemplateScore {
	var scores []TemplateScore
	for _, name := range s.repo.TemplateNames() {
		c, _ := s.repo.Template(name)
		if c.Hits(event) == 0 {
			continue
		}
		scores = append(scores, TemplateScore{Name: name, Score: c.HitRate(event), Sims: c.Sims()})
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].Score != scores[j].Score {
			return scores[i].Score > scores[j].Score
		}
		return scores[i].Name < scores[j].Name
	})
	return scores
}

// EventRow is one line of a per-event TAC report.
type EventRow struct {
	Event   int
	Name    string
	Hits    uint64
	Rate    float64
	Status  coverage.Status
	BestTpl string  // best template for this event ("" if never hit)
	BestP   float64 // that template's hit probability
}

// Report builds a per-event summary over the given events (nil = all),
// the raw material of the tacquery CLI.
func (s *Stats) Report(events []int) []EventRow {
	m := s.repo.Model()
	if events == nil {
		events = make([]int, m.Size())
		for i := range events {
			events[i] = i
		}
	}
	total := s.repo.Total()
	rows := make([]EventRow, 0, len(events))
	for _, e := range events {
		row := EventRow{
			Event:  e,
			Name:   m.Name(e),
			Hits:   total.Hits(e),
			Rate:   total.HitRate(e),
			Status: total.Status(e),
		}
		if best := s.EventTemplates(e); len(best) > 0 {
			row.BestTpl = best[0].Name
			row.BestP = best[0].Score
		}
		rows = append(rows, row)
	}
	return rows
}
