package tac

import (
	"math"
	"testing"

	"repro/internal/coverage"
)

// buildRepo creates a repository over events a..d with three templates:
//
//	t_good: hits b 80%, c 40%
//	t_weak: hits b 20%
//	t_off:  hits a 100%
func buildRepo(t *testing.T) *coverage.Repository {
	t.Helper()
	m := coverage.MustModel([]string{"a", "b", "c", "d"})
	repo := coverage.NewRepository(m)
	add := func(name string, n int, hit func(i int, v coverage.Vector)) {
		for i := 0; i < n; i++ {
			v := coverage.NewVectorFor(m)
			hit(i, v)
			repo.Record(name, v)
		}
	}
	add("t_good", 100, func(i int, v coverage.Vector) {
		if i < 80 {
			v.Set(1)
		}
		if i < 40 {
			v.Set(2)
		}
	})
	add("t_weak", 100, func(i int, v coverage.Vector) {
		if i < 20 {
			v.Set(1)
		}
	})
	add("t_off", 100, func(i int, v coverage.Vector) { v.Set(0) })
	return repo
}

func TestHitProbability(t *testing.T) {
	s := New(buildRepo(t))
	if got := s.HitProbability("t_good", 1); got != 0.8 {
		t.Fatalf("P(t_good hits b) = %v", got)
	}
	if got := s.HitProbability("t_weak", 1); got != 0.2 {
		t.Fatalf("P(t_weak hits b) = %v", got)
	}
	if got := s.HitProbability("missing", 1); got != 0 {
		t.Fatalf("unknown template probability = %v", got)
	}
}

func TestBestTemplates(t *testing.T) {
	s := New(buildRepo(t))
	best, err := s.BestTemplates([]int{1, 2}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(best) != 2 {
		t.Fatalf("len = %d", len(best))
	}
	if best[0].Name != "t_good" || math.Abs(best[0].Score-1.2) > 1e-9 {
		t.Fatalf("best = %+v", best[0])
	}
	if best[1].Name != "t_weak" {
		t.Fatalf("second = %+v", best[1])
	}
}

func TestBestTemplatesWeighted(t *testing.T) {
	s := New(buildRepo(t))
	// Weight event a so heavily that t_off wins.
	best, err := s.BestTemplates([]int{0, 1}, []float64{10, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best[0].Name != "t_off" {
		t.Fatalf("weighted best = %+v", best[0])
	}
}

func TestBestTemplatesErrors(t *testing.T) {
	s := New(buildRepo(t))
	if _, err := s.BestTemplates(nil, nil, 1); err == nil {
		t.Fatal("empty event list should fail")
	}
	if _, err := s.BestTemplates([]int{0}, []float64{1, 2}, 1); err == nil {
		t.Fatal("weight length mismatch should fail")
	}
}

func TestBestTemplatesZeroLimitReturnsAll(t *testing.T) {
	s := New(buildRepo(t))
	best, err := s.BestTemplates([]int{1}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(best) != 3 {
		t.Fatalf("len = %d, want all 3", len(best))
	}
}

func TestBestTemplatesDeterministicTieBreak(t *testing.T) {
	m := coverage.MustModel([]string{"x"})
	repo := coverage.NewRepository(m)
	for _, name := range []string{"zeta", "alpha"} {
		v := coverage.NewVectorFor(m)
		v.Set(0)
		repo.Record(name, v)
	}
	s := New(repo)
	best, _ := s.BestTemplates([]int{0}, nil, 2)
	if best[0].Name != "alpha" {
		t.Fatalf("tie break = %v", best)
	}
}

func TestEventTemplates(t *testing.T) {
	s := New(buildRepo(t))
	ets := s.EventTemplates(1)
	if len(ets) != 2 || ets[0].Name != "t_good" || ets[1].Name != "t_weak" {
		t.Fatalf("EventTemplates = %+v", ets)
	}
	if got := s.EventTemplates(3); len(got) != 0 {
		t.Fatalf("never-hit event has templates: %+v", got)
	}
}

func TestReport(t *testing.T) {
	s := New(buildRepo(t))
	rows := s.Report(nil)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Event b: 100 hits over 300 sims -> well hit; best is t_good.
	b := rows[1]
	if b.Name != "b" || b.Hits != 100 || b.BestTpl != "t_good" || b.BestP != 0.8 {
		t.Fatalf("row b = %+v", b)
	}
	d := rows[3]
	if d.Status != coverage.StatusNever || d.BestTpl != "" {
		t.Fatalf("row d = %+v", d)
	}
	sub := s.Report([]int{3})
	if len(sub) != 1 || sub[0].Name != "d" {
		t.Fatalf("sub report = %+v", sub)
	}
}

func TestRepositoryAccessor(t *testing.T) {
	repo := buildRepo(t)
	if New(repo).Repository() != repo {
		t.Fatal("Repository accessor broken")
	}
}
