// Compiled sampling plans: the "compile once, execute N times" fast path
// of the biased-random engine.
//
// A batch simulation job evaluates one (template, defaults) pair N times
// with N different seeds. The interpreted path re-resolves every
// parameter by name on every decision (template linear scan + defaults
// map lookup) and allocates a fresh weight slice per weighted decision.
// A Plan performs all of that work once per batch: every parameter the
// pair defines is pre-resolved into a flat table with precomputed
// cumulative-weight sums, shared read-only by all N generator instances.
//
// Determinism contract: a generator backed by a Plan consumes its random
// stream exactly like the interpreted path (one Intn per multi-entry
// weighted pick, none for single-entry parameters, one extra IntRange
// for subrange entries), so (template, seed) identifies the same
// test-instance on both paths bit for bit.
package generator

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/template"
)

// planParam is one pre-resolved parameter of a Plan.
type planParam struct {
	name    string
	isRange bool
	lo, hi  int // range parameter bounds

	// Weight parameter tables. cum[i] is the cumulative weight of the
	// positive-weight entries up to and including pos[i]; total is the
	// grand total, 0 when every weight is zero (uniform fallback).
	entries []template.WeightEntry
	pos     []int
	cum     []int
	total   int
}

// pick draws one entry according to the weights, consuming the stream
// exactly like rng.RNG.WeightedIndex on the interpreted path.
func (p *planParam) pick(r *rng.RNG) template.WeightEntry {
	if len(p.entries) == 1 {
		return p.entries[0]
	}
	if p.total == 0 {
		return p.entries[r.Intn(len(p.entries))]
	}
	k := r.Intn(p.total)
	return p.entries[p.pos[sort.SearchInts(p.cum, k+1)]]
}

// Plan is a compiled (template, defaults) pair: every parameter either of
// them defines, pre-resolved (template wins) into decision tables. A Plan
// is immutable after Compile and safe for concurrent use by any number of
// generators.
type Plan struct {
	tmpl   *template.Template
	params map[string]*planParam
}

// Compile builds the sampling plan for tmpl (nil = pure defaults) over
// the given defaults.
func Compile(tmpl *template.Template, defaults Defaults) *Plan {
	plan := &Plan{tmpl: tmpl, params: make(map[string]*planParam, len(defaults))}
	for name, p := range defaults {
		plan.params[name] = compileParam(name, p)
	}
	if tmpl != nil {
		for _, p := range tmpl.Params {
			plan.params[p.ParamName()] = compileParam(p.ParamName(), p)
		}
	}
	return plan
}

// Template returns the template the plan was compiled from (may be nil).
func (p *Plan) Template() *template.Template { return p.tmpl }

// Has reports whether the plan defines the parameter.
func (p *Plan) Has(name string) bool {
	_, ok := p.params[name]
	return ok
}

func compileParam(name string, p template.Param) *planParam {
	switch param := p.(type) {
	case *template.RangeParam:
		return &planParam{name: name, isRange: true, lo: param.Lo, hi: param.Hi}
	case *template.WeightParam:
		// Copy the entries: the plan may be cached and shared across
		// goroutines long after the caller mutates its template.
		cp := &planParam{name: name, entries: append([]template.WeightEntry(nil), param.Entries...)}
		for i, e := range cp.entries {
			if e.Weight > 0 {
				cp.total += e.Weight
				cp.pos = append(cp.pos, i)
				cp.cum = append(cp.cum, cp.total)
			}
		}
		return cp
	default:
		panic(fmt.Sprintf("generator: parameter %q has unknown type %T", name, p))
	}
}

// NewFromPlan returns a generator for one test-instance backed by the
// compiled plan. It is the fast-path equivalent of New(plan.Template(),
// defaults, seed): same decisions, same stream consumption, no
// per-decision resolution or allocation.
func NewFromPlan(plan *Plan, seed uint64) *Generator {
	return &Generator{tmpl: plan.tmpl, plan: plan, r: rng.New(seed), seed: seed}
}

// planLookup finds the pre-resolved parameter, panicking like the
// interpreted path on unknown names.
func (g *Generator) planLookup(name string) *planParam {
	p, ok := g.plan.params[name]
	if !ok {
		panic(fmt.Sprintf("generator: no setting or default for parameter %q", name))
	}
	return p
}

func (g *Generator) planPickValue(name string) string {
	p := g.planLookup(name)
	if p.isRange {
		panic(fmt.Sprintf("generator: parameter %q is not a weight parameter", name))
	}
	return p.pick(g.r).Label()
}

func (g *Generator) planPickInt(name string) int {
	p := g.planLookup(name)
	if p.isRange {
		return g.r.IntRange(p.lo, p.hi)
	}
	e := p.pick(g.r)
	if !e.IsRange {
		panic(fmt.Sprintf("generator: parameter %q has symbolic entries; use PickValue", name))
	}
	return g.r.IntRange(e.Lo, e.Hi)
}
