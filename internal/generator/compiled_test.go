package generator

import (
	"testing"

	"repro/internal/template"
)

// equivTemplates exercises every decision kind the compiler handles:
// multi-entry symbolic weights, zero weights, subrange weights, plain
// ranges, single-entry parameters, and defaults fallback/override.
func equivTemplates(t *testing.T) []*template.Template {
	t.Helper()
	srcs := []string{
		`template mix {
		    weight Mnemonic { load: 40; store: 40; add: 0; mul: 20; }
		    range CacheDelay [3 : 77];
		}`,
		`template sub {
		    weight CacheDelay { [0:9]: 90; [10:100]: 10; }
		    weight Mode { fast: 1; slow: 3; }
		}`,
		`template zero { weight Mnemonic { a: 0; b: 0; c: 0; } }`,
		`template single { weight Mnemonic { only: 0; } range CacheDelay [5 : 5]; }`,
		`template sparse { range Unrelated [1 : 1000000]; }`,
	}
	out := make([]*template.Template, len(srcs))
	for i, src := range srcs {
		out[i] = mustParse(t, src)
	}
	return out
}

// drive makes the same decision sequence on both generators and fails on
// the first divergence. Identical decisions AND identical stream
// consumption are both required: a consumption mismatch shows up as a
// divergence on a later decision.
func drive(t *testing.T, name string, a, b *Generator, rounds int) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		if a.Has("Mnemonic") {
			if x, y := a.PickValue("Mnemonic"), b.PickValue("Mnemonic"); x != y {
				t.Fatalf("%s round %d: Mnemonic %q != %q", name, i, x, y)
			}
		}
		if a.Has("CacheDelay") {
			if x, y := a.PickInt("CacheDelay"), b.PickInt("CacheDelay"); x != y {
				t.Fatalf("%s round %d: CacheDelay %d != %d", name, i, x, y)
			}
		}
		if a.Has("Mode") {
			if x, y := a.PickValue("Mode"), b.PickValue("Mode"); x != y {
				t.Fatalf("%s round %d: Mode %q != %q", name, i, x, y)
			}
		}
	}
	// Any stream-consumption mismatch that the decisions masked shows up
	// in the next raw draw.
	if x, y := a.RNG().Uint64(), b.RNG().Uint64(); x != y {
		t.Fatalf("%s: RNG streams diverged (%d != %d)", name, x, y)
	}
}

func TestCompiledMatchesInterpreted(t *testing.T) {
	defaults := testDefaults(t)
	for _, tmpl := range equivTemplates(t) {
		plan := Compile(tmpl, defaults)
		for seed := uint64(0); seed < 25; seed++ {
			interp := New(tmpl, defaults, seed)
			fast := NewFromPlan(plan, seed)
			drive(t, tmpl.Name, interp, fast, 40)
		}
	}
}

func TestCompiledNilTemplateMatchesInterpreted(t *testing.T) {
	defaults := testDefaults(t)
	plan := Compile(nil, defaults)
	if plan.Template() != nil {
		t.Fatal("nil-template plan should report a nil template")
	}
	for seed := uint64(1); seed < 20; seed++ {
		drive(t, "defaults-only", New(nil, defaults, seed), NewFromPlan(plan, seed), 40)
	}
}

func TestCompiledSingleEntryConsumesNoRandomness(t *testing.T) {
	tmpl := mustParse(t, "template t { weight W { only: 0; } }")
	g := NewFromPlan(Compile(tmpl, nil), 17)
	if v := g.PickValue("W"); v != "only" {
		t.Fatalf("pick = %q", v)
	}
	// The stream must be untouched: the next draw equals a fresh
	// generator's first draw.
	if g.RNG().Uint64() != NewFromPlan(Compile(tmpl, nil), 17).RNG().Uint64() {
		t.Fatal("single-entry pick consumed randomness")
	}
}

func TestCompiledAllZeroWeightsUniform(t *testing.T) {
	tmpl := mustParse(t, "template t { weight W { a: 0; b: 0; } }")
	g := NewFromPlan(Compile(tmpl, nil), 7)
	seen := map[string]int{}
	for i := 0; i < 2000; i++ {
		seen[g.PickValue("W")]++
	}
	if seen["a"] < 800 || seen["b"] < 800 {
		t.Fatalf("all-zero weights not uniform on the compiled path: %v", seen)
	}
}

func TestPlanImmuneToTemplateMutation(t *testing.T) {
	tmpl := mustParse(t, "template t { weight W { a: 100; b: 0; } }")
	plan := Compile(tmpl, nil)
	tmpl.Weight("W").Entries[0].Weight = 0
	tmpl.Weight("W").Entries[1].Weight = 100
	g := NewFromPlan(plan, 3)
	for i := 0; i < 200; i++ {
		if v := g.PickValue("W"); v != "a" {
			t.Fatalf("plan saw a post-compile template mutation: picked %q", v)
		}
	}
}

func TestPlanHas(t *testing.T) {
	tmpl := mustParse(t, "template t { range R [1:2]; }")
	plan := Compile(tmpl, testDefaults(t))
	if !plan.Has("R") || !plan.Has("Mnemonic") {
		t.Fatal("plan should cover both template and default params")
	}
	if plan.Has("NoSuch") {
		t.Fatal("plan should not cover unknown params")
	}
	g := NewFromPlan(plan, 0)
	if !g.Has("R") || !g.Has("Mnemonic") || g.Has("NoSuch") {
		t.Fatal("plan-backed generator Has disagrees with plan")
	}
}

func TestCompiledPanicsMatchInterpreted(t *testing.T) {
	plan := Compile(nil, testDefaults(t))
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic on the compiled path", name)
			}
		}()
		f()
	}
	g := NewFromPlan(plan, 0)
	expectPanic("unknown PickValue", func() { g.PickValue("Missing") })
	expectPanic("unknown PickInt", func() { g.PickInt("Missing") })
	expectPanic("PickValue on range", func() { g.PickValue("CacheDelay") })
	expectPanic("PickInt on symbolic weight", func() { g.PickInt("Mnemonic") })
}
