// Package generator implements the biased-random stimuli generation
// engine of the AS-CDG reproduction.
//
// In the verification environments the paper targets (Section III), a
// test-template modifies the default settings of some parameters of the
// stimuli generator; all other parameters keep their default behavior.
// During generation, the engine is consulted every time a random decision
// tied to a parameter must be made — a parameter may be consulted many
// times per test-instance (e.g. an instruction mnemonic for every
// generated instruction) or not at all (e.g. a cache delay only when the
// cache is accessed).
//
// A test-instance is fully identified by (template, seed): re-running the
// generator with the same pair reproduces the same decision stream, which
// makes every simulation in this repository reproducible.
package generator

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/template"
)

// Defaults is a DUV's default parameter behavior: the settings used for
// any parameter the test-template does not override. Keys are parameter
// names.
type Defaults map[string]template.Param

// Generator makes biased-random decisions for one test-instance. It is
// backed either by a (template, defaults) pair resolved per decision, or
// by a compiled Plan (see NewFromPlan) that resolves everything once per
// batch; both paths produce identical decision streams for a given seed.
type Generator struct {
	tmpl     *template.Template
	defaults Defaults
	plan     *Plan
	r        *rng.RNG
	seed     uint64
}

// New returns a generator for one test-instance of tmpl with the given
// defaults and seed. tmpl may be nil, in which case every decision uses
// the defaults.
func New(tmpl *template.Template, defaults Defaults, seed uint64) *Generator {
	return &Generator{tmpl: tmpl, defaults: defaults, r: rng.New(seed), seed: seed}
}

// Seed returns the test-instance seed.
func (g *Generator) Seed() uint64 { return g.seed }

// Template returns the test-template driving this instance (may be nil).
func (g *Generator) Template() *template.Template { return g.tmpl }

// resolve finds the effective setting for a parameter: the template's if
// present, otherwise the default. The bool reports whether any setting
// exists.
func (g *Generator) resolve(name string) (template.Param, bool) {
	if g.tmpl != nil {
		if p, ok := g.tmpl.Param(name); ok {
			return p, true
		}
	}
	p, ok := g.defaults[name]
	return p, ok
}

// PickValue makes a random decision for a symbolic weight parameter and
// returns the chosen value. For weight parameters containing subrange
// entries the chosen entry's label is returned. It panics if the
// parameter is unknown or is a range parameter — DUV models consult
// parameters they declared defaults for, so an unknown name is a
// programming error, not an input error.
func (g *Generator) PickValue(name string) string {
	if g.plan != nil {
		return g.planPickValue(name)
	}
	p, ok := g.resolve(name)
	if !ok {
		panic(fmt.Sprintf("generator: no setting or default for parameter %q", name))
	}
	wp, ok := p.(*template.WeightParam)
	if !ok {
		panic(fmt.Sprintf("generator: parameter %q is not a weight parameter", name))
	}
	e := g.pickEntry(wp)
	return e.Label()
}

// PickInt makes a random decision for a numeric parameter and returns
// the chosen value:
//
//   - for a range parameter, a uniform draw from [lo, hi];
//   - for a weight parameter over subranges (the Skeletonizer's output
//     form), a weighted draw of a subrange followed by a uniform draw
//     inside it — this is exactly how the CDG-Runner shapes the
//     distribution of an originally-uniform range parameter (paper
//     Section IV-C).
//
// It panics if the parameter is unknown or is a symbolic weight
// parameter.
func (g *Generator) PickInt(name string) int {
	if g.plan != nil {
		return g.planPickInt(name)
	}
	p, ok := g.resolve(name)
	if !ok {
		panic(fmt.Sprintf("generator: no setting or default for parameter %q", name))
	}
	switch param := p.(type) {
	case *template.RangeParam:
		return g.r.IntRange(param.Lo, param.Hi)
	case *template.WeightParam:
		e := g.pickEntry(param)
		if !e.IsRange {
			panic(fmt.Sprintf("generator: parameter %q has symbolic entries; use PickValue", name))
		}
		return g.r.IntRange(e.Lo, e.Hi)
	default:
		panic(fmt.Sprintf("generator: parameter %q has unknown type %T", name, p))
	}
}

// pickEntry draws one entry of a weight parameter according to the
// weights. All-zero weights select uniformly, mirroring a generator that
// falls back to uniform choice when the template disables every value.
func (g *Generator) pickEntry(wp *template.WeightParam) template.WeightEntry {
	if len(wp.Entries) == 1 {
		return wp.Entries[0]
	}
	weights := make([]int, len(wp.Entries))
	for i, e := range wp.Entries {
		weights[i] = e.Weight
	}
	return wp.Entries[g.pickIndex(weights)]
}

func (g *Generator) pickIndex(weights []int) int {
	return g.r.WeightedIndex(weights)
}

// Has reports whether the parameter has a setting (template or default).
func (g *Generator) Has(name string) bool {
	if g.plan != nil {
		return g.plan.Has(name)
	}
	_, ok := g.resolve(name)
	return ok
}

// RNG exposes the instance's random stream for auxiliary decisions a DUV
// model needs that are not tied to a template parameter (e.g. internal
// micro-architectural noise). Sharing the stream keeps the whole
// test-instance reproducible from its seed.
func (g *Generator) RNG() *rng.RNG { return g.r }
