package generator

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/template"
)

func mustParse(t *testing.T, src string) *template.Template {
	t.Helper()
	tmpl, err := template.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return tmpl
}

func testDefaults(t *testing.T) Defaults {
	t.Helper()
	def := mustParse(t, `
template defaults {
    weight Mnemonic {
        load:  25;
        store: 25;
        add:   25;
        mul:   25;
    }
    range CacheDelay [0 : 100];
    weight Mode {
        fast: 100;
        slow: 0;
    }
}
`)
	d := Defaults{}
	for _, p := range def.Params {
		d[p.ParamName()] = p
	}
	return d
}

func TestTemplateOverridesDefault(t *testing.T) {
	tmpl := mustParse(t, `
template t {
    weight Mnemonic {
        load: 100;
        store: 0;
    }
}
`)
	g := New(tmpl, testDefaults(t), 1)
	for i := 0; i < 200; i++ {
		if v := g.PickValue("Mnemonic"); v != "load" {
			t.Fatalf("template override ignored: got %q", v)
		}
	}
}

func TestDefaultFallback(t *testing.T) {
	tmpl := mustParse(t, "template t { range Unrelated [1:2]; }")
	g := New(tmpl, testDefaults(t), 2)
	seen := map[string]int{}
	for i := 0; i < 4000; i++ {
		seen[g.PickValue("Mnemonic")]++
	}
	for _, v := range []string{"load", "store", "add", "mul"} {
		if seen[v] < 800 || seen[v] > 1200 {
			t.Errorf("default Mnemonic %q frequency %d, want ~1000", v, seen[v])
		}
	}
}

func TestNilTemplateUsesDefaults(t *testing.T) {
	g := New(nil, testDefaults(t), 3)
	v := g.PickInt("CacheDelay")
	if v < 0 || v > 100 {
		t.Fatalf("CacheDelay = %d out of default range", v)
	}
	if g.Template() != nil {
		t.Fatal("Template() should be nil")
	}
}

func TestPickIntRangeUniform(t *testing.T) {
	g := New(nil, testDefaults(t), 4)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := g.PickInt("CacheDelay")
		if v < 0 || v > 100 {
			t.Fatalf("out of range: %d", v)
		}
		sum += float64(v)
	}
	if mean := sum / n; math.Abs(mean-50) > 1.5 {
		t.Fatalf("mean = %v, want ~50", mean)
	}
}

func TestPickIntSubrangeWeights(t *testing.T) {
	tmpl := mustParse(t, `
template t {
    weight CacheDelay {
        [0:9]:    90;
        [10:100]: 10;
    }
}
`)
	g := New(tmpl, testDefaults(t), 5)
	low := 0
	const n = 20000
	for i := 0; i < n; i++ {
		v := g.PickInt("CacheDelay")
		if v < 0 || v > 100 {
			t.Fatalf("out of range: %d", v)
		}
		if v <= 9 {
			low++
		}
	}
	rate := float64(low) / n
	if math.Abs(rate-0.9) > 0.02 {
		t.Fatalf("low subrange rate = %v, want ~0.9", rate)
	}
}

func TestZeroWeightNeverPicked(t *testing.T) {
	g := New(nil, testDefaults(t), 6)
	for i := 0; i < 500; i++ {
		if v := g.PickValue("Mode"); v != "fast" {
			t.Fatalf("zero-weight value picked: %q", v)
		}
	}
}

func TestAllZeroWeightsUniform(t *testing.T) {
	tmpl := mustParse(t, "template t { weight W { a: 0; b: 0; } }")
	g := New(tmpl, nil, 7)
	seen := map[string]int{}
	for i := 0; i < 2000; i++ {
		seen[g.PickValue("W")]++
	}
	if seen["a"] < 800 || seen["b"] < 800 {
		t.Fatalf("all-zero weights not uniform: %v", seen)
	}
}

func TestSingleEntryFastPath(t *testing.T) {
	tmpl := mustParse(t, "template t { weight W { only: 0; } }")
	g := New(tmpl, nil, 8)
	if v := g.PickValue("W"); v != "only" {
		t.Fatalf("single entry pick = %q", v)
	}
}

func TestDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		d := Defaults{}
		tmpl, err := template.Parse(`
template t {
    weight A { x: 1; y: 2; z: 3; }
    range B [0 : 1000];
}
`)
		if err != nil {
			return false
		}
		g1 := New(tmpl, d, seed)
		g2 := New(tmpl, d, seed)
		for i := 0; i < 50; i++ {
			if g1.PickValue("A") != g2.PickValue("A") {
				return false
			}
			if g1.PickInt("B") != g2.PickInt("B") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	tmpl := mustParse(t, "template t { range B [0 : 1000000]; }")
	g1 := New(tmpl, nil, 100)
	g2 := New(tmpl, nil, 101)
	same := 0
	for i := 0; i < 50; i++ {
		if g1.PickInt("B") == g2.PickInt("B") {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincided %d/50 times", same)
	}
}

func TestHas(t *testing.T) {
	tmpl := mustParse(t, "template t { range R [1:2]; }")
	g := New(tmpl, testDefaults(t), 9)
	if !g.Has("R") || !g.Has("Mnemonic") {
		t.Fatal("Has should see both template and default params")
	}
	if g.Has("NoSuch") {
		t.Fatal("Has should not see unknown params")
	}
	if g.Seed() != 9 {
		t.Fatalf("Seed = %d", g.Seed())
	}
}

func TestPanicsOnUnknownParam(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PickValue of unknown param should panic")
		}
	}()
	New(nil, nil, 0).PickValue("Missing")
}

func TestPanicsOnWrongKind(t *testing.T) {
	g := New(nil, testDefaults(t), 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PickValue on a range param should panic")
			}
		}()
		g.PickValue("CacheDelay")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PickInt on a symbolic weight param should panic")
			}
		}()
		g.PickInt("Mnemonic")
	}()
}

func TestPickIntUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PickInt of unknown param should panic")
		}
	}()
	New(nil, nil, 0).PickInt("Missing")
}

func TestRNGSharedStream(t *testing.T) {
	g := New(nil, testDefaults(t), 11)
	// Auxiliary draws from RNG() must be deterministic per seed.
	a := New(nil, testDefaults(t), 11)
	if g.RNG().Uint64() != a.RNG().Uint64() {
		t.Fatal("RNG() streams of equal seeds must agree")
	}
}

func TestWeightedMixMatchesWeights(t *testing.T) {
	tmpl := mustParse(t, `
template t {
    weight Mnemonic {
        load:  40;
        store: 40;
        add:   0;
        mul:   20;
    }
}
`)
	g := New(tmpl, testDefaults(t), 12)
	seen := map[string]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		seen[g.PickValue("Mnemonic")]++
	}
	if seen["add"] != 0 {
		t.Fatalf("add picked %d times despite zero weight", seen["add"])
	}
	for v, w := range map[string]float64{"load": 0.4, "store": 0.4, "mul": 0.2} {
		got := float64(seen[v]) / n
		if math.Abs(got-w) > 0.01 {
			t.Errorf("%s rate = %v, want ~%v", v, got, w)
		}
	}
}
