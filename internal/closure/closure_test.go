package closure

import (
	"strings"
	"testing"
	"time"

	"repro/internal/coverage"
)

func mkCounts(m *coverage.Model, sims int, hits map[string]int) *coverage.Counts {
	c := coverage.NewCountsFor(m)
	for s := 0; s < sims; s++ {
		v := coverage.NewVectorFor(m)
		for name, h := range hits {
			if s < h {
				v.Set(m.MustLookup(name))
			}
		}
		c.Add(v)
	}
	return c
}

func testTracker(t *testing.T) (*Tracker, *coverage.Model) {
	t.Helper()
	m := coverage.MustModel([]string{"a", "b", "c", "d"})
	tr := NewTracker(m)
	at := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	// Snapshot 1: a well hit, b lightly, c/d never.
	if err := tr.Record("week1", at, mkCounts(m, 1000, map[string]int{"a": 500, "b": 5})); err != nil {
		t.Fatal(err)
	}
	// Snapshot 2: a well, b well, c lightly, d never.
	if err := tr.Record("week2", at.AddDate(0, 0, 7),
		mkCounts(m, 5000, map[string]int{"a": 2500, "b": 500, "c": 10})); err != nil {
		t.Fatal(err)
	}
	return tr, m
}

func TestRecordAndCoverage(t *testing.T) {
	tr, _ := testTracker(t)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	s1 := tr.Snapshot(0)
	if s1.Coverage() != 0.5 { // a, b of 4
		t.Fatalf("week1 coverage = %v", s1.Coverage())
	}
	if s1.WellCoverage() != 0.25 { // a only
		t.Fatalf("week1 well = %v", s1.WellCoverage())
	}
	latest, ok := tr.Latest()
	if !ok || latest.Label != "week2" {
		t.Fatalf("Latest = %+v, %v", latest, ok)
	}
	if latest.Coverage() != 0.75 {
		t.Fatalf("week2 coverage = %v", latest.Coverage())
	}
}

func TestRecordValidation(t *testing.T) {
	m := coverage.MustModel([]string{"a"})
	tr := NewTracker(m)
	if err := tr.Record("bad", time.Time{}, coverage.NewCounts(5)); err == nil {
		t.Fatal("size mismatch should fail")
	}
}

func TestDiff(t *testing.T) {
	tr, m := testTracker(t)
	d, err := tr.Diff(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.From != "week1" || d.To != "week2" {
		t.Fatalf("labels = %q -> %q", d.From, d.To)
	}
	if len(d.NewlyCovered) != 1 || d.NewlyCovered[0] != m.MustLookup("c") {
		t.Fatalf("NewlyCovered = %v", d.NewlyCovered)
	}
	if len(d.Improved) != 1 || d.Improved[0] != m.MustLookup("b") {
		t.Fatalf("Improved = %v", d.Improved)
	}
	if len(d.Regressed) != 0 {
		t.Fatalf("Regressed = %v", d.Regressed)
	}
	if d.Sims != 4000 {
		t.Fatalf("Sims = %d", d.Sims)
	}
}

func TestDiffDetectsRegression(t *testing.T) {
	m := coverage.MustModel([]string{"a"})
	tr := NewTracker(m)
	if err := tr.Record("s1", time.Time{}, mkCounts(m, 1000, map[string]int{"a": 500})); err != nil {
		t.Fatal(err)
	}
	// Re-based aggregate in which a is only lightly hit.
	if err := tr.Record("s2", time.Time{}, mkCounts(m, 1000, map[string]int{"a": 5})); err != nil {
		t.Fatal(err)
	}
	d, err := tr.Diff(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressed) != 1 {
		t.Fatalf("Regressed = %v", d.Regressed)
	}
}

func TestDiffErrors(t *testing.T) {
	tr, _ := testTracker(t)
	for _, pair := range [][2]int{{-1, 1}, {0, 2}, {1, 1}, {1, 0}} {
		if _, err := tr.Diff(pair[0], pair[1]); err == nil {
			t.Errorf("Diff(%d,%d) should fail", pair[0], pair[1])
		}
	}
}

func TestVelocity(t *testing.T) {
	tr, _ := testTracker(t)
	// 1 newly covered event over 4000 sims -> 250 per million.
	if got := tr.Velocity(); got != 250 {
		t.Fatalf("Velocity = %v", got)
	}
	empty := NewTracker(coverage.MustModel([]string{"a"}))
	if empty.Velocity() != 0 {
		t.Fatal("empty tracker velocity should be 0")
	}
}

func TestReport(t *testing.T) {
	tr, _ := testTracker(t)
	rep := tr.Report(0)
	for _, want := range []string{"week1", "week2", "coverage", "still uncovered: 1 events", "d"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestReportCapsUncovered(t *testing.T) {
	m := coverage.MustModel([]string{"a", "b", "c", "d", "e"})
	tr := NewTracker(m)
	if err := tr.Record("s", time.Time{}, mkCounts(m, 100, nil)); err != nil {
		t.Fatal(err)
	}
	rep := tr.Report(2)
	if !strings.Contains(rep, "first 2 shown") {
		t.Fatalf("cap not applied:\n%s", rep)
	}
	if strings.Count(rep, "\n  ") != 2 {
		t.Fatalf("want 2 uncovered rows:\n%s", rep)
	}
}

func TestReportEmptyTracker(t *testing.T) {
	tr := NewTracker(coverage.MustModel([]string{"a"}))
	if rep := tr.Report(0); !strings.Contains(rep, "snapshot") {
		t.Fatalf("empty report = %q", rep)
	}
}
