// Package closure tracks coverage-closure progress over time: the
// bookkeeping the paper's introduction describes around project
// milestones ("coverage status is an important criterion for many
// project milestones, such as tapeouts").
//
// A Tracker records snapshots of a coverage repository as the project
// (or an AS-CDG campaign) advances, and answers the questions a
// verification lead asks: how far along is closure, what changed since
// the last snapshot, which events regressed, and how fast is coverage
// moving per simulation spent.
package closure

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/coverage"
)

// Snapshot is the coverage state at one point in a campaign.
type Snapshot struct {
	// Label identifies the snapshot ("after sampling", "week 3", ...).
	Label string
	// When is the snapshot's wall-clock time (caller-supplied; the
	// tracker never reads the clock so campaigns stay reproducible).
	When time.Time
	// Sims is the cumulative simulation count at the snapshot.
	Sims uint64
	// status[id] is each event's status at the snapshot.
	status []coverage.Status
	// covered counts events with status != never.
	covered int
	// well counts events with status == well.
	well int
}

// Tracker accumulates snapshots over one coverage model.
type Tracker struct {
	model     *coverage.Model
	snapshots []Snapshot
}

// NewTracker creates a tracker for the model.
func NewTracker(m *coverage.Model) *Tracker {
	return &Tracker{model: m}
}

// Record appends a snapshot of the aggregate counts.
func (t *Tracker) Record(label string, when time.Time, counts *coverage.Counts) error {
	if counts.Len() != t.model.Size() {
		return fmt.Errorf("closure: counts track %d events, model has %d", counts.Len(), t.model.Size())
	}
	s := Snapshot{
		Label:  label,
		When:   when,
		Sims:   counts.Sims(),
		status: make([]coverage.Status, t.model.Size()),
	}
	for id := 0; id < t.model.Size(); id++ {
		st := counts.Status(id)
		s.status[id] = st
		if st != coverage.StatusNever {
			s.covered++
		}
		if st == coverage.StatusWell {
			s.well++
		}
	}
	t.snapshots = append(t.snapshots, s)
	return nil
}

// Len returns the number of snapshots.
func (t *Tracker) Len() int { return len(t.snapshots) }

// Snapshot returns the i-th snapshot.
func (t *Tracker) Snapshot(i int) Snapshot { return t.snapshots[i] }

// Latest returns the most recent snapshot; ok is false when empty.
func (t *Tracker) Latest() (Snapshot, bool) {
	if len(t.snapshots) == 0 {
		return Snapshot{}, false
	}
	return t.snapshots[len(t.snapshots)-1], true
}

// Coverage returns a snapshot's covered fraction in [0, 1].
func (s Snapshot) Coverage() float64 {
	if len(s.status) == 0 {
		return 0
	}
	return float64(s.covered) / float64(len(s.status))
}

// WellCoverage returns a snapshot's well-hit fraction in [0, 1].
func (s Snapshot) WellCoverage() float64 {
	if len(s.status) == 0 {
		return 0
	}
	return float64(s.well) / float64(len(s.status))
}

// Delta describes the event-status movement between two snapshots.
type Delta struct {
	From, To string
	// NewlyCovered lists events that went from never to covered.
	NewlyCovered []int
	// Improved lists events whose status rose (excluding NewlyCovered).
	Improved []int
	// Regressed lists events whose status dropped. With monotone
	// aggregates this stays empty; it catches campaigns that substitute
	// a weaker aggregate (e.g. a re-based repository).
	Regressed []int
	// Sims is the simulation spend between the snapshots.
	Sims uint64
}

// Diff compares snapshots i and j (i earlier).
func (t *Tracker) Diff(i, j int) (Delta, error) {
	if i < 0 || j >= len(t.snapshots) || i >= j {
		return Delta{}, fmt.Errorf("closure: bad snapshot pair (%d, %d) of %d", i, j, len(t.snapshots))
	}
	a, b := t.snapshots[i], t.snapshots[j]
	d := Delta{From: a.Label, To: b.Label}
	if b.Sims >= a.Sims {
		d.Sims = b.Sims - a.Sims
	}
	for id := 0; id < t.model.Size(); id++ {
		switch {
		case a.status[id] == coverage.StatusNever && b.status[id] != coverage.StatusNever:
			d.NewlyCovered = append(d.NewlyCovered, id)
		case b.status[id] > a.status[id]:
			d.Improved = append(d.Improved, id)
		case b.status[id] < a.status[id]:
			d.Regressed = append(d.Regressed, id)
		}
	}
	return d, nil
}

// Velocity returns newly-covered events per million simulations between
// the first and last snapshot (0 when undefined).
func (t *Tracker) Velocity() float64 {
	if len(t.snapshots) < 2 {
		return 0
	}
	d, err := t.Diff(0, len(t.snapshots)-1)
	if err != nil || d.Sims == 0 {
		return 0
	}
	return float64(len(d.NewlyCovered)) / float64(d.Sims) * 1e6
}

// Report renders the closure progression as a table plus the latest
// still-uncovered events (capped at maxUncovered rows; 0 = all).
func (t *Tracker) Report(maxUncovered int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %10s %10s %10s\n", "snapshot", "sims", "covered", "well", "coverage")
	b.WriteString(strings.Repeat("-", 72) + "\n")
	for _, s := range t.snapshots {
		fmt.Fprintf(&b, "%-24s %12d %10d %10d %9.2f%%\n",
			s.Label, s.Sims, s.covered, s.well, s.Coverage()*100)
	}
	latest, ok := t.Latest()
	if !ok {
		return b.String()
	}
	var uncovered []string
	for id := 0; id < t.model.Size(); id++ {
		if latest.status[id] == coverage.StatusNever {
			uncovered = append(uncovered, t.model.Name(id))
		}
	}
	sort.Strings(uncovered)
	fmt.Fprintf(&b, "\nstill uncovered: %d events", len(uncovered))
	if maxUncovered > 0 && len(uncovered) > maxUncovered {
		uncovered = uncovered[:maxUncovered]
		fmt.Fprintf(&b, " (first %d shown)", maxUncovered)
	}
	b.WriteString("\n")
	for _, name := range uncovered {
		fmt.Fprintf(&b, "  %s\n", name)
	}
	return b.String()
}
