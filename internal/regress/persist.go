// Suite persistence: the harvested regression suite written as a JSON
// artifact — template sources plus per-template statistics — so a CDG
// campaign's output survives the process. Writes are atomic
// (write-rename): a crash mid-save leaves the previous suite intact.
package regress

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/atomicfile"
	"repro/internal/coverage"
	"repro/internal/template"
)

// suiteJSON is the on-disk form.
type suiteJSON struct {
	Events  int         `json:"events"`
	Entries []entryJSON `json:"entries"`
}

// entryJSON is one member: the template's source text (empty when only
// statistics are known) and its raw counters.
type entryJSON struct {
	Name     string   `json:"name"`
	Template string   `json:"template,omitempty"`
	Hits     []uint64 `json:"hits"`
	Sims     uint64   `json:"sims"`
}

// SaveFile writes the suite to path atomically (temp file + fsync +
// rename), preserving entry order.
func (s *Suite) SaveFile(path string) error {
	doc := suiteJSON{Events: s.model.Size()}
	for _, e := range s.entries {
		hits, sims := e.Counts.Raw()
		ej := entryJSON{Name: e.Name, Hits: hits, Sims: sims}
		if e.Template != nil {
			ej.Template = e.Template.String()
		}
		doc.Entries = append(doc.Entries, ej)
	}
	return atomicfile.WriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	})
}

// LoadSuiteFile reads a suite saved by SaveFile, re-parsing the stored
// template sources. The model must match the one the suite was built
// against (same event count).
func LoadSuiteFile(path string, m *coverage.Model) (*Suite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc suiteJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("regress: %s: %w", path, err)
	}
	if doc.Events != m.Size() {
		return nil, fmt.Errorf("regress: %s tracks %d events, model has %d", path, doc.Events, m.Size())
	}
	s := NewSuite(m)
	for _, ej := range doc.Entries {
		if len(ej.Hits) != m.Size() {
			return nil, fmt.Errorf("regress: %s: entry %q has %d hit counters, want %d",
				path, ej.Name, len(ej.Hits), m.Size())
		}
		var tmpl *template.Template
		if ej.Template != "" {
			tmpl, err = template.Parse(ej.Template)
			if err != nil {
				return nil, fmt.Errorf("regress: %s: entry %q: %w", path, ej.Name, err)
			}
		}
		if err := s.Add(ej.Name, tmpl, coverage.CountsFromRaw(ej.Hits, ej.Sims)); err != nil {
			return nil, fmt.Errorf("regress: %s: %w", path, err)
		}
	}
	return s, nil
}
