package regress

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/coverage"
	"repro/internal/template"
)

// TestSuiteSaveLoadRoundTrip: a saved suite — template sources included
// — must reload into identical entries, and re-saving the loaded suite
// must produce byte-identical JSON.
func TestSuiteSaveLoadRoundTrip(t *testing.T) {
	s, m := testSuite(t)
	tmpl, err := template.Parse(`template rt {
    weight Command {
        dma_read:  70;
        crc:       30;
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add("rt", tmpl, mkCounts(m.Size(), 50, map[int]int{4: 9})); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "suite.json")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSuiteFile(path, m)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Names(), s.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for _, name := range s.Names() {
		want, _ := s.Entry(name)
		got, _ := loaded.Entry(name)
		if !reflect.DeepEqual(got.Counts, want.Counts) {
			t.Fatalf("entry %q counts diverged", name)
		}
	}
	got, _ := loaded.Entry("rt")
	if got.Template == nil || got.Template.String() != tmpl.String() {
		t.Fatalf("template did not round-trip:\n%v", got.Template)
	}

	path2 := filepath.Join(t.TempDir(), "suite2.json")
	if err := loaded.SaveFile(path2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if string(b1) != string(b2) {
		t.Fatal("re-saved suite is not byte-identical")
	}
}

// TestLoadSuiteFileRejectsBadInput: wrong model, corrupt JSON, and
// truncated files must error cleanly, never panic.
func TestLoadSuiteFileRejectsBadInput(t *testing.T) {
	s, m := testSuite(t)
	path := filepath.Join(t.TempDir(), "suite.json")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	small := coverage.MustModel([]string{"a", "b"})
	if _, err := LoadSuiteFile(path, small); err == nil {
		t.Fatal("mismatched model accepted")
	}

	data, _ := os.ReadFile(path)
	for _, n := range []int{0, 1, len(data) / 2, len(data) - 10} {
		trunc := filepath.Join(t.TempDir(), "trunc.json")
		if err := os.WriteFile(trunc, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadSuiteFile(trunc, m); err == nil {
			t.Fatalf("truncation at %d bytes accepted", n)
		}
	}

	if _, err := LoadSuiteFile(filepath.Join(t.TempDir(), "missing.json"), m); err == nil {
		t.Fatal("missing file accepted")
	}
}
