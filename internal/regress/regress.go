// Package regress manages regression suites: the destination of
// AS-CDG's harvest step (paper Section IV-F, "this test-template is
// added to the regression suite of the DUV") and the template-selection
// queries of the TAC line of work (ref [3] suggests regression policies
// focused on hardly-hit events; Yang et al. [12] drop templates that
// contribute nothing).
//
// Two optimizations are provided:
//
//   - Minimize: the smallest template subset that preserves the suite's
//     total event coverage (greedy set cover);
//   - Policy: an allocation of a simulation budget across templates that
//     maximizes the expected number of (optionally weighted) events hit
//     at least once, using TAC per-template hit probabilities.
package regress

import (
	"fmt"
	"sort"

	"repro/internal/coverage"
	"repro/internal/template"
)

// Entry is one regression-suite member: a template (body optional) with
// its aggregated coverage statistics.
type Entry struct {
	Name     string
	Template *template.Template // nil when only statistics are known
	Counts   *coverage.Counts
}

// Suite is a regression suite over one coverage model.
type Suite struct {
	model   *coverage.Model
	entries []Entry
	byName  map[string]int
}

// NewSuite returns an empty suite for the model.
func NewSuite(m *coverage.Model) *Suite {
	return &Suite{model: m, byName: map[string]int{}}
}

// Add registers a template with its statistics. Adding an existing name
// replaces its entry.
func (s *Suite) Add(name string, tmpl *template.Template, counts *coverage.Counts) error {
	if name == "" {
		return fmt.Errorf("regress: entry needs a name")
	}
	if counts == nil || counts.Sims() == 0 {
		return fmt.Errorf("regress: entry %q has no simulation statistics", name)
	}
	if counts.Len() != s.model.Size() {
		return fmt.Errorf("regress: entry %q counts track %d events, model has %d",
			name, counts.Len(), s.model.Size())
	}
	e := Entry{Name: name, Template: tmpl, Counts: counts}
	if i, ok := s.byName[name]; ok {
		s.entries[i] = e
		return nil
	}
	s.byName[name] = len(s.entries)
	s.entries = append(s.entries, e)
	return nil
}

// FromRepository builds a suite from a coverage repository, attaching
// template bodies where the caller knows them.
func FromRepository(repo *coverage.Repository, bodies map[string]*template.Template) (*Suite, error) {
	s := NewSuite(repo.Model())
	for _, name := range repo.TemplateNames() {
		counts, _ := repo.Template(name)
		if err := s.Add(name, bodies[name], counts); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Len returns the number of suite entries.
func (s *Suite) Len() int { return len(s.entries) }

// Names returns the entry names in insertion order.
func (s *Suite) Names() []string {
	names := make([]string, len(s.entries))
	for i, e := range s.entries {
		names[i] = e.Name
	}
	return names
}

// Entry returns the named entry and whether it exists.
func (s *Suite) Entry(name string) (Entry, bool) {
	i, ok := s.byName[name]
	if !ok {
		return Entry{}, false
	}
	return s.entries[i], true
}

// Covered returns the IDs of all events hit by at least one entry.
func (s *Suite) Covered() []int {
	var ids []int
	for id := 0; id < s.model.Size(); id++ {
		for _, e := range s.entries {
			if e.Counts.Hits(id) > 0 {
				ids = append(ids, id)
				break
			}
		}
	}
	return ids
}

// Minimize returns the names of a small subset of entries that covers
// every event the full suite covers, using the classic greedy set-cover
// heuristic (largest marginal coverage first; ties prefer higher total
// hit mass, then lexicographic order for determinism).
func (s *Suite) Minimize() []string {
	remaining := map[int]bool{}
	for _, id := range s.Covered() {
		remaining[id] = true
	}
	used := map[string]bool{}
	var picked []string
	for len(remaining) > 0 {
		bestIdx := -1
		bestGain := 0
		var bestMass uint64
		for i, e := range s.entries {
			if used[e.Name] {
				continue
			}
			gain := 0
			var mass uint64
			for id := range remaining {
				if h := e.Counts.Hits(id); h > 0 {
					gain++
					mass += h
				}
			}
			better := gain > bestGain ||
				(gain == bestGain && gain > 0 && mass > bestMass) ||
				(gain == bestGain && gain > 0 && mass == bestMass && bestIdx >= 0 && e.Name < s.entries[bestIdx].Name)
			if better {
				bestIdx, bestGain, bestMass = i, gain, mass
			}
		}
		if bestIdx < 0 {
			break // unreachable if Covered was computed from the same entries
		}
		e := s.entries[bestIdx]
		used[e.Name] = true
		picked = append(picked, e.Name)
		for id := range remaining {
			if e.Counts.Hits(id) > 0 {
				delete(remaining, id)
			}
		}
	}
	sort.Strings(picked)
	return picked
}

// Policy allocates a budget of simulations across the suite's templates
// to maximize the expected number of focus events hit at least once.
// focus maps event ID -> importance weight; nil focuses uniformly on
// every event the suite can hit. The allocation is greedy in chunks:
// each chunk goes to the template with the highest marginal expected
// gain given the miss probabilities accumulated so far. The returned
// map's values sum to budget (when budget >= chunk and some template
// has nonzero gain).
func (s *Suite) Policy(budget int, focus map[int]float64) map[string]int {
	const chunk = 10
	alloc := map[string]int{}
	if budget <= 0 || len(s.entries) == 0 {
		return alloc
	}
	if focus == nil {
		focus = map[int]float64{}
		for _, id := range s.Covered() {
			focus[id] = 1
		}
	}
	// pMiss[e] = probability event e is missed by the allocation so far.
	pMiss := map[int]float64{}
	for id := range focus {
		pMiss[id] = 1
	}
	// Per-template, per-focus-event hit probabilities.
	type tp struct {
		name  string
		probs map[int]float64
	}
	tps := make([]tp, 0, len(s.entries))
	for _, e := range s.entries {
		probs := map[int]float64{}
		for id := range focus {
			if p := e.Counts.HitRate(id); p > 0 {
				probs[id] = p
			}
		}
		tps = append(tps, tp{name: e.Name, probs: probs})
	}
	sort.Slice(tps, func(i, j int) bool { return tps[i].name < tps[j].name })

	for spent := 0; spent < budget; {
		step := chunk
		if budget-spent < step {
			step = budget - spent
		}
		bestIdx, bestGain := -1, 0.0
		for i, t := range tps {
			gain := 0.0
			for id, p := range t.probs {
				// Expected newly-hit mass of `step` sims of this template.
				miss := pMiss[id]
				if miss == 0 {
					continue
				}
				gain += focus[id] * miss * (1 - pow1m(p, step))
			}
			if gain > bestGain {
				bestIdx, bestGain = i, gain
			}
		}
		if bestIdx < 0 {
			break // nothing can improve the focus set
		}
		t := tps[bestIdx]
		alloc[t.name] += step
		for id, p := range t.probs {
			pMiss[id] *= pow1m(p, step)
		}
		spent += step
	}
	return alloc
}

// pow1m returns (1-p)^n.
func pow1m(p float64, n int) float64 {
	out := 1.0
	base := 1 - p
	for n > 0 {
		if n&1 == 1 {
			out *= base
		}
		base *= base
		n >>= 1
	}
	return out
}
