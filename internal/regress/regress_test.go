package regress

import (
	"math"
	"testing"

	"repro/internal/coverage"
	"repro/internal/template"
)

// mkCounts builds counts over n events: sims simulations, with hits[id]
// hits for each listed event.
func mkCounts(n, sims int, hits map[int]int) *coverage.Counts {
	c := coverage.NewCounts(n)
	for s := 0; s < sims; s++ {
		v := coverage.NewVector(n)
		for id, h := range hits {
			if s < h {
				v.Set(id)
			}
		}
		c.Add(v)
	}
	return c
}

func testSuite(t *testing.T) (*Suite, *coverage.Model) {
	t.Helper()
	m := coverage.MustModel([]string{"a", "b", "c", "d", "e"})
	s := NewSuite(m)
	add := func(name string, hits map[int]int) {
		t.Helper()
		if err := s.Add(name, nil, mkCounts(m.Size(), 100, hits)); err != nil {
			t.Fatal(err)
		}
	}
	// t1 covers a,b; t2 covers b,c; t3 covers a,b,c (superset of both);
	// t4 covers d exclusively. Event e is never covered.
	add("t1", map[int]int{0: 50, 1: 40})
	add("t2", map[int]int{1: 30, 2: 20})
	add("t3", map[int]int{0: 60, 1: 60, 2: 60})
	add("t4", map[int]int{3: 10})
	return s, m
}

func TestSuiteBasics(t *testing.T) {
	s, _ := testSuite(t)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	names := s.Names()
	if len(names) != 4 || names[0] != "t1" {
		t.Fatalf("Names = %v", names)
	}
	e, ok := s.Entry("t3")
	if !ok || e.Counts.Hits(0) != 60 {
		t.Fatalf("Entry(t3) = %+v, %v", e, ok)
	}
	if _, ok := s.Entry("nope"); ok {
		t.Fatal("missing entry found")
	}
	covered := s.Covered()
	if len(covered) != 4 { // a,b,c,d — e uncovered
		t.Fatalf("Covered = %v", covered)
	}
}

func TestAddValidation(t *testing.T) {
	m := coverage.MustModel([]string{"a"})
	s := NewSuite(m)
	if err := s.Add("", nil, mkCounts(1, 10, nil)); err == nil {
		t.Error("empty name should fail")
	}
	if err := s.Add("x", nil, nil); err == nil {
		t.Error("nil counts should fail")
	}
	if err := s.Add("x", nil, coverage.NewCounts(1)); err == nil {
		t.Error("zero-sim counts should fail")
	}
	if err := s.Add("x", nil, mkCounts(3, 10, nil)); err == nil {
		t.Error("size mismatch should fail")
	}
}

func TestAddReplaces(t *testing.T) {
	m := coverage.MustModel([]string{"a"})
	s := NewSuite(m)
	if err := s.Add("x", nil, mkCounts(1, 10, map[int]int{0: 1})); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("x", nil, mkCounts(1, 20, map[int]int{0: 2})); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after replace", s.Len())
	}
	e, _ := s.Entry("x")
	if e.Counts.Sims() != 20 {
		t.Fatal("replace did not take")
	}
}

func TestMinimizeGreedySetCover(t *testing.T) {
	s, _ := testSuite(t)
	picked := s.Minimize()
	// t3 covers {a,b,c}; t4 covers {d}; t1 and t2 are redundant.
	if len(picked) != 2 || picked[0] != "t3" || picked[1] != "t4" {
		t.Fatalf("Minimize = %v, want [t3 t4]", picked)
	}
}

func TestMinimizePreservesCoverage(t *testing.T) {
	s, m := testSuite(t)
	picked := s.Minimize()
	keep := map[string]bool{}
	for _, n := range picked {
		keep[n] = true
	}
	// Every event covered by the full suite must be covered by the
	// minimized subset.
	for _, id := range s.Covered() {
		hit := false
		for _, name := range s.Names() {
			if !keep[name] {
				continue
			}
			e, _ := s.Entry(name)
			if e.Counts.Hits(id) > 0 {
				hit = true
				break
			}
		}
		if !hit {
			t.Fatalf("event %s lost by minimization", m.Name(id))
		}
	}
}

func TestMinimizeEmptySuite(t *testing.T) {
	s := NewSuite(coverage.MustModel([]string{"a"}))
	if got := s.Minimize(); len(got) != 0 {
		t.Fatalf("empty suite Minimize = %v", got)
	}
}

func TestPolicyBudgetConserved(t *testing.T) {
	s, _ := testSuite(t)
	alloc := s.Policy(100, nil)
	total := 0
	for _, n := range alloc {
		total += n
	}
	if total != 100 {
		t.Fatalf("allocated %d, want 100 (alloc %v)", total, alloc)
	}
}

func TestPolicyFocusesExclusiveTemplate(t *testing.T) {
	s, m := testSuite(t)
	// Focus entirely on event d: only t4 hits it.
	focus := map[int]float64{m.MustLookup("d"): 1}
	alloc := s.Policy(50, focus)
	if alloc["t4"] != 50 {
		t.Fatalf("alloc = %v, want everything on t4", alloc)
	}
}

func TestPolicyPrefersHardlyHitFocus(t *testing.T) {
	s, m := testSuite(t)
	// Focus on the lightly-hit event d (10%) and the easy event a.
	focus := map[int]float64{
		m.MustLookup("a"): 1,
		m.MustLookup("d"): 5, // hardly-hit events matter more
	}
	alloc := s.Policy(200, focus)
	if alloc["t4"] == 0 {
		t.Fatalf("alloc = %v: the only template hitting d got nothing", alloc)
	}
}

func TestPolicyUncoverableFocusStops(t *testing.T) {
	s, m := testSuite(t)
	// Event e is hit by no template: no allocation possible.
	alloc := s.Policy(100, map[int]float64{m.MustLookup("e"): 1})
	if len(alloc) != 0 {
		t.Fatalf("alloc = %v, want empty", alloc)
	}
}

func TestPolicyZeroBudget(t *testing.T) {
	s, _ := testSuite(t)
	if got := s.Policy(0, nil); len(got) != 0 {
		t.Fatalf("zero budget alloc = %v", got)
	}
}

func TestPolicyDeterministic(t *testing.T) {
	s, _ := testSuite(t)
	a := s.Policy(130, nil)
	b := s.Policy(130, nil)
	if len(a) != len(b) {
		t.Fatal("non-deterministic policy")
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("non-deterministic policy: %v vs %v", a, b)
		}
	}
}

func TestFromRepository(t *testing.T) {
	m := coverage.MustModel([]string{"a", "b"})
	repo := coverage.NewRepository(m)
	v := coverage.NewVectorFor(m)
	v.Set(0)
	repo.Record("t1", v)
	body, err := template.Parse("template t1 { range R [1:2]; }")
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromRepository(repo, map[string]*template.Template{"t1": body})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := s.Entry("t1")
	if !ok || e.Template != body {
		t.Fatal("body not attached")
	}
}

func TestPow1m(t *testing.T) {
	if got := pow1m(0.5, 2); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("pow1m(0.5,2) = %v", got)
	}
	if got := pow1m(0.1, 0); got != 1 {
		t.Fatalf("pow1m(_,0) = %v", got)
	}
	if got := pow1m(1, 5); got != 0 {
		t.Fatalf("pow1m(1,5) = %v", got)
	}
}
