// Package coverage implements the coverage substrate of the AS-CDG
// reproduction: coverage events and models, per-simulation coverage
// vectors, aggregated hit counts, the coverage repository the
// verification team queries during coverage closure (paper Section III),
// and the IBM status convention used to color the paper's result tables
// (Section V).
package coverage

import (
	"fmt"
	"sort"
)

// Event is one coverage event of a DUV's coverage model.
type Event struct {
	// ID is the event's index within its model; vectors and counts are
	// indexed by ID.
	ID int
	// Name is the event's unique name within the model (e.g. "crc_064").
	Name string
}

// Model is the coverage model of a DUV: an immutable, ordered set of
// named events, with optional named families (ordered groups of related
// events, e.g. the fill levels of one buffer) and cross products.
type Model struct {
	events   []Event
	byName   map[string]int
	families map[string][]int // family name -> ordered event IDs
	crosses  map[string]*CrossProduct
}

// NewModel creates a model containing the given events, in order. Event
// names must be unique and non-empty.
func NewModel(names []string) (*Model, error) {
	m := &Model{
		byName:   make(map[string]int, len(names)),
		families: map[string][]int{},
		crosses:  map[string]*CrossProduct{},
	}
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("coverage: event %d has empty name", i)
		}
		if _, dup := m.byName[name]; dup {
			return nil, fmt.Errorf("coverage: duplicate event name %q", name)
		}
		m.byName[name] = i
		m.events = append(m.events, Event{ID: i, Name: name})
	}
	return m, nil
}

// MustModel is like NewModel but panics on error; intended for
// statically-known DUV models.
func MustModel(names []string) *Model {
	m, err := NewModel(names)
	if err != nil {
		panic(err)
	}
	return m
}

// Size returns the number of events in the model.
func (m *Model) Size() int { return len(m.events) }

// Events returns the model's events in ID order. The returned slice must
// not be modified.
func (m *Model) Events() []Event { return m.events }

// Lookup returns the ID of the named event and whether it exists.
func (m *Model) Lookup(name string) (int, bool) {
	id, ok := m.byName[name]
	return id, ok
}

// MustLookup returns the ID of the named event, panicking if absent.
func (m *Model) MustLookup(name string) int {
	id, ok := m.byName[name]
	if !ok {
		panic(fmt.Sprintf("coverage: unknown event %q", name))
	}
	return id
}

// Name returns the name of the event with the given ID.
func (m *Model) Name(id int) string {
	return m.events[id].Name
}

// AddFamily registers an ordered family of related events (e.g.
// successive fill levels of a buffer). Order matters: it encodes the
// "natural order" neighbor relation of paper Section IV-A.
func (m *Model) AddFamily(name string, eventNames []string) error {
	if name == "" {
		return fmt.Errorf("coverage: family has empty name")
	}
	if _, dup := m.families[name]; dup {
		return fmt.Errorf("coverage: duplicate family %q", name)
	}
	if len(eventNames) == 0 {
		return fmt.Errorf("coverage: family %q has no events", name)
	}
	ids := make([]int, len(eventNames))
	for i, en := range eventNames {
		id, ok := m.byName[en]
		if !ok {
			return fmt.Errorf("coverage: family %q: unknown event %q", name, en)
		}
		ids[i] = id
	}
	m.families[name] = ids
	return nil
}

// Family returns the ordered event IDs of the named family and whether
// the family exists.
func (m *Model) Family(name string) ([]int, bool) {
	ids, ok := m.families[name]
	return ids, ok
}

// FamilyNames returns the registered family names, sorted.
func (m *Model) FamilyNames() []string {
	names := make([]string, 0, len(m.families))
	for n := range m.families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FamilyOf returns the name of the family containing the event and the
// event's position within it, or ("", -1) if the event is in no family.
func (m *Model) FamilyOf(eventID int) (string, int) {
	for _, name := range m.FamilyNames() {
		for pos, id := range m.families[name] {
			if id == eventID {
				return name, pos
			}
		}
	}
	return "", -1
}

// AddCross registers a cross-product coverage group; the cross's events
// must already exist in the model (use CrossProduct.EventNames to
// generate them).
func (m *Model) AddCross(cp *CrossProduct) error {
	if cp == nil || cp.Name == "" {
		return fmt.Errorf("coverage: cross product has empty name")
	}
	if _, dup := m.crosses[cp.Name]; dup {
		return fmt.Errorf("coverage: duplicate cross product %q", cp.Name)
	}
	for _, en := range cp.EventNames() {
		if _, ok := m.byName[en]; !ok {
			return fmt.Errorf("coverage: cross %q: unknown event %q", cp.Name, en)
		}
	}
	m.crosses[cp.Name] = cp
	return nil
}

// Cross returns the named cross product and whether it exists.
func (m *Model) Cross(name string) (*CrossProduct, bool) {
	cp, ok := m.crosses[name]
	return cp, ok
}

// CrossNames returns the registered cross product names, sorted.
func (m *Model) CrossNames() []string {
	names := make([]string, 0, len(m.crosses))
	for n := range m.crosses {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IDs maps a list of event names to their IDs, failing on the first
// unknown name.
func (m *Model) IDs(names []string) ([]int, error) {
	ids := make([]int, len(names))
	for i, n := range names {
		id, ok := m.byName[n]
		if !ok {
			return nil, fmt.Errorf("coverage: unknown event %q", n)
		}
		ids[i] = id
	}
	return ids, nil
}
