package coverage

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/atomicfile"
)

// Repository is the coverage repository of paper Section III: a summary
// of the coverage vectors produced by all simulated test-instances,
// aggregated per test-template. The verification team (and the AS-CDG
// flow) queries it for uncovered events and per-template statistics.
type Repository struct {
	model       *Model
	perTemplate map[string]*Counts
	total       *Counts
}

// NewRepository returns an empty repository for the given model.
func NewRepository(m *Model) *Repository {
	return &Repository{
		model:       m,
		perTemplate: map[string]*Counts{},
		total:       NewCountsFor(m),
	}
}

// Model returns the coverage model the repository is built over.
func (r *Repository) Model() *Model { return r.model }

// Record aggregates one simulation's coverage vector under the given
// template name.
func (r *Repository) Record(templateName string, v Vector) {
	c, ok := r.perTemplate[templateName]
	if !ok {
		c = NewCountsFor(r.model)
		r.perTemplate[templateName] = c
	}
	c.Add(v)
	r.total.Add(v)
}

// RecordCounts merges a pre-aggregated Counts under the given template
// name (used by the batch simulation environment).
func (r *Repository) RecordCounts(templateName string, counts *Counts) {
	c, ok := r.perTemplate[templateName]
	if !ok {
		c = NewCountsFor(r.model)
		r.perTemplate[templateName] = c
	}
	c.Merge(counts)
	r.total.Merge(counts)
}

// Total returns the aggregate over all templates.
func (r *Repository) Total() *Counts { return r.total }

// Template returns the aggregate for one template and whether the
// template has any recorded simulations.
func (r *Repository) Template(name string) (*Counts, bool) {
	c, ok := r.perTemplate[name]
	return c, ok
}

// TemplateNames returns the names of all templates with recorded
// simulations, sorted.
func (r *Repository) TemplateNames() []string {
	names := make([]string, 0, len(r.perTemplate))
	for n := range r.perTemplate {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Sims returns the total number of recorded simulations.
func (r *Repository) Sims() uint64 { return r.total.Sims() }

// Uncovered returns the IDs of all never-hit events, ascending.
func (r *Repository) Uncovered() []int {
	var ids []int
	for id := 0; id < r.model.Size(); id++ {
		if r.total.Hits(id) == 0 {
			ids = append(ids, id)
		}
	}
	return ids
}

// LightlyHit returns the IDs of all lightly-hit events, ascending.
func (r *Repository) LightlyHit() []int {
	var ids []int
	for id := 0; id < r.model.Size(); id++ {
		if r.total.Status(id) == StatusLightly {
			ids = append(ids, id)
		}
	}
	return ids
}

// Merge folds another repository into r. Both must be built over the
// same model (same events in the same order). Per-template statistics
// accumulate; this is how results from several simulation-farm shards
// combine into one repository.
func (r *Repository) Merge(o *Repository) error {
	if o == nil {
		return nil
	}
	if o.model.Size() != r.model.Size() {
		return fmt.Errorf("coverage: merging repositories over different models (%d vs %d events)",
			o.model.Size(), r.model.Size())
	}
	for i := 0; i < r.model.Size(); i++ {
		if r.model.Name(i) != o.model.Name(i) {
			return fmt.Errorf("coverage: merging repositories over different models (event %d: %q vs %q)",
				i, r.model.Name(i), o.model.Name(i))
		}
	}
	for name, counts := range o.perTemplate {
		r.RecordCounts(name, counts)
	}
	return nil
}

// repoJSON is the serialized form of a repository. Event order is
// captured explicitly so a repository can be reloaded against a model
// revision check.
type repoJSON struct {
	Events    []string              `json:"events"`
	Sims      uint64                `json:"sims"`
	Templates map[string]countsJSON `json:"templates"`
	Families  map[string][]string   `json:"families,omitempty"`
}

type countsJSON struct {
	Sims uint64   `json:"sims"`
	Hits []uint64 `json:"hits"`
}

// Save writes the repository to w as JSON.
func (r *Repository) Save(w io.Writer) error {
	out := repoJSON{
		Sims:      r.total.Sims(),
		Templates: make(map[string]countsJSON, len(r.perTemplate)),
		Families:  map[string][]string{},
	}
	for _, e := range r.model.Events() {
		out.Events = append(out.Events, e.Name)
	}
	for name, c := range r.perTemplate {
		out.Templates[name] = countsJSON{Sims: c.sims, Hits: c.hits}
	}
	for _, fam := range r.model.FamilyNames() {
		ids, _ := r.model.Family(fam)
		names := make([]string, len(ids))
		for i, id := range ids {
			names[i] = r.model.Name(id)
		}
		out.Families[fam] = names
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// SaveFile writes the repository to the named file atomically (temp
// file + fsync + rename): a crash mid-save leaves any previous
// repository intact instead of a truncated JSON document.
func (r *Repository) SaveFile(path string) error {
	return atomicfile.WriteFile(path, r.Save)
}

// Load reads a repository previously written by Save. The stored event
// list must exactly match the given model's events.
func Load(rd io.Reader, m *Model) (*Repository, error) {
	var in repoJSON
	if err := json.NewDecoder(rd).Decode(&in); err != nil {
		return nil, fmt.Errorf("coverage: loading repository: %w", err)
	}
	if len(in.Events) != m.Size() {
		return nil, fmt.Errorf("coverage: repository has %d events, model has %d", len(in.Events), m.Size())
	}
	for i, name := range in.Events {
		if m.Name(i) != name {
			return nil, fmt.Errorf("coverage: repository event %d is %q, model has %q", i, name, m.Name(i))
		}
	}
	repo := NewRepository(m)
	for name, cj := range in.Templates {
		if len(cj.Hits) != m.Size() {
			return nil, fmt.Errorf("coverage: template %q has %d hit counters, model has %d events",
				name, len(cj.Hits), m.Size())
		}
		c := &Counts{hits: cj.Hits, sims: cj.Sims}
		repo.RecordCounts(name, c)
	}
	return repo, nil
}

// LoadFile reads a repository from the named file.
func LoadFile(path string, m *Model) (*Repository, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, m)
}
