package coverage

import "math/bits"

// Vector is the coverage vector of one simulated test-instance: bit i is
// set iff event i was hit during the simulation (paper Section III). It
// is a fixed-size bitset sized to a model.
type Vector struct {
	words []uint64
	n     int
}

// NewVector returns an all-zero vector for n events.
func NewVector(n int) Vector {
	return Vector{words: make([]uint64, (n+63)/64), n: n}
}

// NewVectorFor returns an all-zero vector sized to the model.
func NewVectorFor(m *Model) Vector {
	return NewVector(m.Size())
}

// Len returns the number of events the vector covers.
func (v Vector) Len() int { return v.n }

// Set marks event id as hit.
func (v Vector) Set(id int) {
	v.words[id>>6] |= 1 << (uint(id) & 63)
}

// Clear marks event id as not hit.
func (v Vector) Clear(id int) {
	v.words[id>>6] &^= 1 << (uint(id) & 63)
}

// Get reports whether event id was hit.
func (v Vector) Get(id int) bool {
	return v.words[id>>6]&(1<<(uint(id)&63)) != 0
}

// PopCount returns the number of hit events.
func (v Vector) PopCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Or sets v to v|u. Both vectors must have the same length.
func (v Vector) Or(u Vector) {
	v.sizeCheck(u)
	for i := range v.words {
		v.words[i] |= u.words[i]
	}
}

// And sets v to v&u. Both vectors must have the same length.
func (v Vector) And(u Vector) {
	v.sizeCheck(u)
	for i := range v.words {
		v.words[i] &= u.words[i]
	}
}

// AndNot sets v to v&^u. Both vectors must have the same length.
func (v Vector) AndNot(u Vector) {
	v.sizeCheck(u)
	for i := range v.words {
		v.words[i] &^= u.words[i]
	}
}

// Reset clears all bits.
func (v Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	c := Vector{words: make([]uint64, len(v.words)), n: v.n}
	copy(c.words, v.words)
	return c
}

// Equal reports whether v and u have identical length and bits.
func (v Vector) Equal(u Vector) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// HitIDs returns the IDs of all hit events in ascending order.
func (v Vector) HitIDs() []int {
	ids := make([]int, 0, v.PopCount())
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			ids = append(ids, wi*64+b)
			w &= w - 1
		}
	}
	return ids
}

func (v Vector) sizeCheck(u Vector) {
	if v.n != u.n {
		panic("coverage: vector size mismatch")
	}
}
