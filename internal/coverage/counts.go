package coverage

import (
	"fmt"
	"math/bits"
)

// Counts aggregates coverage vectors: per-event hit counts over a number
// of simulations. A hit count is the number of simulations in which the
// event was hit at least once, so HitRate is the empirical estimate
// e_N(t) of the paper's per-event hit probability (Section IV-D).
type Counts struct {
	hits []uint64
	sims uint64
}

// NewCounts returns zeroed counts for n events.
func NewCounts(n int) *Counts {
	return &Counts{hits: make([]uint64, n)}
}

// NewCountsFor returns zeroed counts sized to the model.
func NewCountsFor(m *Model) *Counts {
	return NewCounts(m.Size())
}

// Len returns the number of events tracked.
func (c *Counts) Len() int { return len(c.hits) }

// Sims returns the number of simulations aggregated.
func (c *Counts) Sims() uint64 { return c.sims }

// Add aggregates one simulation's coverage vector. It walks the
// vector's words directly (popcount-style bit extraction) rather than
// materializing HitIDs(), so the hottest aggregation loop in the system
// — one Add per simulation — allocates nothing.
func (c *Counts) Add(v Vector) {
	if v.n != len(c.hits) {
		panic(fmt.Sprintf("coverage: Counts.Add: vector has %d events, counts track %d", v.n, len(c.hits)))
	}
	c.sims++
	hits := c.hits
	for wi, w := range v.words {
		base := wi << 6
		for w != 0 {
			hits[base+bits.TrailingZeros64(w)]++
			w &= w - 1
		}
	}
}

// Merge adds another aggregate into c.
func (c *Counts) Merge(o *Counts) {
	if o == nil {
		return
	}
	if len(o.hits) != len(c.hits) {
		panic(fmt.Sprintf("coverage: Counts.Merge: size mismatch %d vs %d", len(o.hits), len(c.hits)))
	}
	c.sims += o.sims
	for i, h := range o.hits {
		c.hits[i] += h
	}
}

// Hits returns the hit count of event id.
func (c *Counts) Hits(id int) uint64 { return c.hits[id] }

// HitRate returns the empirical hit probability of event id: hits/sims.
// It returns 0 when no simulations were aggregated.
func (c *Counts) HitRate(id int) float64 {
	if c.sims == 0 {
		return 0
	}
	return float64(c.hits[id]) / float64(c.sims)
}

// Status returns the IBM status of event id under this aggregate.
func (c *Counts) Status(id int) Status {
	return Classify(c.hits[id], c.sims)
}

// Raw returns a copy of the per-event hit counts and the simulation
// count — the wire form of an aggregate. CountsFromRaw reverses it.
func (c *Counts) Raw() ([]uint64, uint64) {
	hits := make([]uint64, len(c.hits))
	copy(hits, c.hits)
	return hits, c.sims
}

// AppendRaw appends the per-event hit counts to dst (reusing its
// capacity) and returns the extended slice plus the simulation count —
// the allocation-free form of Raw for encoders that own a reusable
// scratch buffer.
func (c *Counts) AppendRaw(dst []uint64) ([]uint64, uint64) {
	return append(dst, c.hits...), c.sims
}

// AddRaw merges a wire-form aggregate (per-event hit counts + sim
// count) into c without an intermediate Counts allocation — the decode
// side of AppendRaw. The caller keeps ownership of hits.
func (c *Counts) AddRaw(hits []uint64, sims uint64) {
	if len(hits) != len(c.hits) {
		panic(fmt.Sprintf("coverage: Counts.AddRaw: size mismatch %d vs %d", len(hits), len(c.hits)))
	}
	c.sims += sims
	for i, h := range hits {
		c.hits[i] += h
	}
}

// Reset zeroes the aggregate in place, keeping its event capacity —
// so per-lane scratch aggregates can be reused across chunks.
func (c *Counts) Reset() {
	c.sims = 0
	clear(c.hits)
}

// CountsFromRaw reconstructs an aggregate from its wire form (a copy is
// taken, so the caller keeps ownership of hits).
func CountsFromRaw(hits []uint64, sims uint64) *Counts {
	c := &Counts{hits: make([]uint64, len(hits)), sims: sims}
	copy(c.hits, hits)
	return c
}

// Clone returns an independent copy.
func (c *Counts) Clone() *Counts {
	n := &Counts{hits: make([]uint64, len(c.hits)), sims: c.sims}
	copy(n.hits, c.hits)
	return n
}

// StatusCounts tallies how many of the given events fall into each
// status class; pass nil to tally all events. This is the summary shape
// of the paper's Fig. 5.
func (c *Counts) StatusCounts(events []int) map[Status]int {
	out := map[Status]int{StatusNever: 0, StatusLightly: 0, StatusWell: 0}
	if events == nil {
		for id := range c.hits {
			out[c.Status(id)]++
		}
		return out
	}
	for _, id := range events {
		out[c.Status(id)]++
	}
	return out
}
