package coverage

import (
	"fmt"
	"strings"
)

// Dim is one attribute of a cross-product coverage group, e.g.
// thread ∈ {t0, t1, t2, t3}.
type Dim struct {
	Name   string
	Values []string
}

// CrossProduct defines a cross-product coverage group (paper Section V,
// Fig. 5): one event per combination of attribute values. Event names are
// "<name>_<v0>_<v1>_..._<vk>" with the dimension values in declaration
// order.
type CrossProduct struct {
	Name string
	Dims []Dim
}

// NewCrossProduct builds a cross product after validating that every
// dimension has a name and at least one value.
func NewCrossProduct(name string, dims []Dim) (*CrossProduct, error) {
	if name == "" {
		return nil, fmt.Errorf("coverage: cross product needs a name")
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("coverage: cross %q needs at least one dimension", name)
	}
	for _, d := range dims {
		if d.Name == "" {
			return nil, fmt.Errorf("coverage: cross %q has a dimension with no name", name)
		}
		if len(d.Values) == 0 {
			return nil, fmt.Errorf("coverage: cross %q dimension %q has no values", name, d.Name)
		}
		seen := map[string]bool{}
		for _, v := range d.Values {
			if v == "" {
				return nil, fmt.Errorf("coverage: cross %q dimension %q has an empty value", name, d.Name)
			}
			if strings.Contains(v, "_") {
				return nil, fmt.Errorf("coverage: cross %q dimension %q value %q contains %q, which is the event-name separator",
					name, d.Name, v, "_")
			}
			if seen[v] {
				return nil, fmt.Errorf("coverage: cross %q dimension %q duplicates value %q", name, d.Name, v)
			}
			seen[v] = true
		}
	}
	return &CrossProduct{Name: name, Dims: dims}, nil
}

// Size returns the number of events in the cross product.
func (cp *CrossProduct) Size() int {
	n := 1
	for _, d := range cp.Dims {
		n *= len(d.Values)
	}
	return n
}

// EventName returns the event name for the given coordinate tuple
// (one index per dimension).
func (cp *CrossProduct) EventName(coords []int) string {
	parts := make([]string, 0, len(cp.Dims)+1)
	parts = append(parts, cp.Name)
	for i, d := range cp.Dims {
		parts = append(parts, d.Values[coords[i]])
	}
	return strings.Join(parts, "_")
}

// EventNames enumerates all event names in row-major order (last
// dimension varies fastest).
func (cp *CrossProduct) EventNames() []string {
	names := make([]string, 0, cp.Size())
	coords := make([]int, len(cp.Dims))
	for {
		names = append(names, cp.EventName(coords))
		// Increment coords, last dimension fastest.
		i := len(coords) - 1
		for ; i >= 0; i-- {
			coords[i]++
			if coords[i] < len(cp.Dims[i].Values) {
				break
			}
			coords[i] = 0
		}
		if i < 0 {
			return names
		}
	}
}

// Coords parses an event name of this cross product back into its
// coordinate tuple. It returns an error if the name does not belong to
// the cross product.
func (cp *CrossProduct) Coords(eventName string) ([]int, error) {
	rest, ok := strings.CutPrefix(eventName, cp.Name+"_")
	if !ok {
		return nil, fmt.Errorf("coverage: event %q is not in cross %q", eventName, cp.Name)
	}
	parts := strings.Split(rest, "_")
	if len(parts) != len(cp.Dims) {
		return nil, fmt.Errorf("coverage: event %q has %d attributes, cross %q has %d",
			eventName, len(parts), cp.Name, len(cp.Dims))
	}
	coords := make([]int, len(cp.Dims))
	for i, d := range cp.Dims {
		found := -1
		for j, v := range d.Values {
			if v == parts[i] {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("coverage: event %q: %q is not a value of dimension %q",
				eventName, parts[i], d.Name)
		}
		coords[i] = found
	}
	return coords, nil
}

// Hamming returns the Hamming distance between two events of the cross
// product: the number of dimensions in which their coordinates differ.
// This is the structural neighbor metric of Fine & Ziv's cross-product
// exploitation (paper Section IV-A, ref [15]).
func (cp *CrossProduct) Hamming(a, b string) (int, error) {
	ca, err := cp.Coords(a)
	if err != nil {
		return 0, err
	}
	cb, err := cp.Coords(b)
	if err != nil {
		return 0, err
	}
	d := 0
	for i := range ca {
		if ca[i] != cb[i] {
			d++
		}
	}
	return d, nil
}
