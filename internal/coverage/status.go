package coverage

// Status classifies an event's coverage level using the IBM convention
// the paper's result tables follow (Section V):
//
//   - never hit  (red):    hit count == 0
//   - lightly hit (orange): hit count < 100, or hit rate < 1%
//   - well hit   (green):  everything else
type Status int

const (
	// StatusNever marks an uncovered event (0 hits).
	StatusNever Status = iota
	// StatusLightly marks a lightly-hit event (<100 hits or <1% rate).
	StatusLightly
	// StatusWell marks a well-hit event.
	StatusWell
)

// String returns the conventional label for the status.
func (s Status) String() string {
	switch s {
	case StatusNever:
		return "never"
	case StatusLightly:
		return "lightly"
	case StatusWell:
		return "well"
	}
	return "unknown"
}

// lightlyHitCount and lightlyHitRate are the IBM thresholds quoted in
// the paper: fewer than 100 hits, or a hit rate below 1%, is lightly hit.
const (
	lightlyHitCount = 100
	lightlyHitRate  = 0.01
)

// Classify returns the status of an event with the given hit count over
// the given number of simulations.
func Classify(hits, sims uint64) Status {
	if hits == 0 {
		return StatusNever
	}
	if hits < lightlyHitCount {
		return StatusLightly
	}
	if sims > 0 && float64(hits)/float64(sims) < lightlyHitRate {
		return StatusLightly
	}
	return StatusWell
}
