package coverage

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func testModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel([]string{"a", "b", "c", "d", "e"})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel([]string{"a", ""}); err == nil {
		t.Error("empty event name should fail")
	}
	if _, err := NewModel([]string{"a", "a"}); err == nil {
		t.Error("duplicate event name should fail")
	}
	m := testModel(t)
	if m.Size() != 5 {
		t.Fatalf("size = %d", m.Size())
	}
	if id, ok := m.Lookup("c"); !ok || id != 2 {
		t.Fatalf("Lookup(c) = %d,%v", id, ok)
	}
	if _, ok := m.Lookup("nope"); ok {
		t.Error("Lookup of missing event should report false")
	}
	if m.Name(4) != "e" {
		t.Fatalf("Name(4) = %q", m.Name(4))
	}
	if m.MustLookup("a") != 0 {
		t.Error("MustLookup(a) != 0")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup of unknown event should panic")
		}
	}()
	testModel(t).MustLookup("zzz")
}

func TestMustModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustModel with duplicate should panic")
		}
	}()
	MustModel([]string{"x", "x"})
}

func TestFamilies(t *testing.T) {
	m := testModel(t)
	if err := m.AddFamily("fam", []string{"b", "c", "d"}); err != nil {
		t.Fatal(err)
	}
	ids, ok := m.Family("fam")
	if !ok || len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Fatalf("Family = %v, %v", ids, ok)
	}
	if name, pos := m.FamilyOf(2); name != "fam" || pos != 1 {
		t.Fatalf("FamilyOf(c) = %q,%d", name, pos)
	}
	if name, pos := m.FamilyOf(0); name != "" || pos != -1 {
		t.Fatalf("FamilyOf(a) = %q,%d, want none", name, pos)
	}
	if err := m.AddFamily("fam", []string{"a"}); err == nil {
		t.Error("duplicate family should fail")
	}
	if err := m.AddFamily("bad", []string{"zzz"}); err == nil {
		t.Error("unknown event in family should fail")
	}
	if err := m.AddFamily("", []string{"a"}); err == nil {
		t.Error("empty family name should fail")
	}
	if err := m.AddFamily("empty", nil); err == nil {
		t.Error("empty family should fail")
	}
	names := m.FamilyNames()
	if len(names) != 1 || names[0] != "fam" {
		t.Fatalf("FamilyNames = %v", names)
	}
}

func TestIDs(t *testing.T) {
	m := testModel(t)
	ids, err := m.IDs([]string{"e", "a"})
	if err != nil || len(ids) != 2 || ids[0] != 4 || ids[1] != 0 {
		t.Fatalf("IDs = %v, %v", ids, err)
	}
	if _, err := m.IDs([]string{"nope"}); err == nil {
		t.Error("IDs with unknown name should fail")
	}
}

func TestVectorBasics(t *testing.T) {
	v := NewVector(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d", v.Len())
	}
	for _, id := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(id) {
			t.Fatalf("fresh vector has bit %d set", id)
		}
		v.Set(id)
		if !v.Get(id) {
			t.Fatalf("Set(%d) did not stick", id)
		}
	}
	if v.PopCount() != 8 {
		t.Fatalf("PopCount = %d, want 8", v.PopCount())
	}
	ids := v.HitIDs()
	want := []int{0, 1, 63, 64, 65, 127, 128, 129}
	if len(ids) != len(want) {
		t.Fatalf("HitIDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("HitIDs[%d] = %d, want %d", i, ids[i], want[i])
		}
	}
	v.Clear(64)
	if v.Get(64) || v.PopCount() != 7 {
		t.Fatal("Clear failed")
	}
	v.Reset()
	if v.PopCount() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestVectorAlgebraProperties(t *testing.T) {
	mk := func(seed uint64, n int) Vector {
		r := rng.New(seed)
		v := NewVector(n)
		for i := 0; i < n; i++ {
			if r.Bool(0.3) {
				v.Set(i)
			}
		}
		return v
	}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(300)
		a, b := mk(seed+1, n), mk(seed+2, n)

		// Or then AndNot b leaves a's exclusive bits.
		or := a.Clone()
		or.Or(b)
		for i := 0; i < n; i++ {
			if or.Get(i) != (a.Get(i) || b.Get(i)) {
				return false
			}
		}
		and := a.Clone()
		and.And(b)
		for i := 0; i < n; i++ {
			if and.Get(i) != (a.Get(i) && b.Get(i)) {
				return false
			}
		}
		diff := a.Clone()
		diff.AndNot(b)
		for i := 0; i < n; i++ {
			if diff.Get(i) != (a.Get(i) && !b.Get(i)) {
				return false
			}
		}
		// Clone independence: mutating the clone must not affect the original.
		c := a.Clone()
		if !c.Equal(a) {
			return false
		}
		before := a.Get(0)
		c.Set(0)
		c.Clear(0)
		if a.Get(0) != before {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Or of mismatched vectors should panic")
		}
	}()
	NewVector(10).Or(NewVector(11))
}

func TestVectorEqualDifferentLengths(t *testing.T) {
	if NewVector(3).Equal(NewVector(4)) {
		t.Fatal("vectors of different lengths must not be equal")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		hits, sims uint64
		want       Status
	}{
		{0, 0, StatusNever},
		{0, 1000, StatusNever},
		{1, 10, StatusLightly},        // <100 hits
		{99, 99, StatusLightly},       // <100 hits even at 100% rate
		{100, 100, StatusWell},        // 100 hits at 100%
		{100, 100000, StatusLightly},  // 0.1% rate
		{500, 10000, StatusWell},      // 5%
		{1000, 100001, StatusLightly}, // just under 1%
		{1000, 100000, StatusWell},    // exactly 1%
	}
	for _, tc := range cases {
		if got := Classify(tc.hits, tc.sims); got != tc.want {
			t.Errorf("Classify(%d, %d) = %v, want %v", tc.hits, tc.sims, got, tc.want)
		}
	}
}

func TestStatusString(t *testing.T) {
	if StatusNever.String() != "never" || StatusLightly.String() != "lightly" || StatusWell.String() != "well" {
		t.Fatal("Status.String mismatch")
	}
	if Status(99).String() != "unknown" {
		t.Fatal("unknown status should print as unknown")
	}
}

func TestClassifyMonotoneInHits(t *testing.T) {
	// Property: with sims fixed, adding hits never lowers the status.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		sims := uint64(1 + r.Intn(1_000_000))
		probes := []uint64{0, 1, 50, 99, 100, sims / 100, sims / 2, sims}
		sort.Slice(probes, func(i, j int) bool { return probes[i] < probes[j] })
		prev := StatusNever
		for _, hits := range probes {
			if hits > sims {
				continue
			}
			s := Classify(hits, sims)
			if s < prev {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountsAggregation(t *testing.T) {
	m := testModel(t)
	c := NewCountsFor(m)
	v := NewVectorFor(m)
	v.Set(1)
	v.Set(3)
	c.Add(v)
	v.Reset()
	v.Set(1)
	c.Add(v)
	if c.Sims() != 2 {
		t.Fatalf("Sims = %d", c.Sims())
	}
	if c.Hits(1) != 2 || c.Hits(3) != 1 || c.Hits(0) != 0 {
		t.Fatalf("hits = %d,%d,%d", c.Hits(1), c.Hits(3), c.Hits(0))
	}
	if c.HitRate(1) != 1.0 || c.HitRate(3) != 0.5 {
		t.Fatalf("rates = %v,%v", c.HitRate(1), c.HitRate(3))
	}
	if NewCounts(3).HitRate(0) != 0 {
		t.Fatal("HitRate with no sims should be 0")
	}
}

func TestCountsMergeAssociative(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(100)
		mk := func() *Counts {
			c := NewCounts(n)
			for s := 0; s < r.Intn(20); s++ {
				v := NewVector(n)
				for i := 0; i < n; i++ {
					if r.Bool(0.2) {
						v.Set(i)
					}
				}
				c.Add(v)
			}
			return c
		}
		a, b, c := mk(), mk(), mk()
		// (a+b)+c == a+(b+c)
		left := a.Clone()
		left.Merge(b)
		left.Merge(c)
		bc := b.Clone()
		bc.Merge(c)
		right := a.Clone()
		right.Merge(bc)
		if left.Sims() != right.Sims() {
			return false
		}
		for i := 0; i < n; i++ {
			if left.Hits(i) != right.Hits(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCountsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add of mismatched vector should panic")
		}
	}()
	NewCounts(3).Add(NewVector(4))
}

func TestCountsMergeNilIsNoop(t *testing.T) {
	c := NewCounts(2)
	c.Merge(nil)
	if c.Sims() != 0 {
		t.Fatal("Merge(nil) should be a no-op")
	}
}

func TestStatusCounts(t *testing.T) {
	m := testModel(t)
	c := NewCountsFor(m)
	// 1000 sims: event 0 never, event 1 lightly (50 hits), event 2 well (500).
	for i := 0; i < 1000; i++ {
		v := NewVectorFor(m)
		if i < 50 {
			v.Set(1)
		}
		if i < 500 {
			v.Set(2)
		}
		c.Add(v)
	}
	sc := c.StatusCounts([]int{0, 1, 2})
	if sc[StatusNever] != 1 || sc[StatusLightly] != 1 || sc[StatusWell] != 1 {
		t.Fatalf("StatusCounts = %v", sc)
	}
	all := c.StatusCounts(nil)
	if all[StatusNever] != 3 { // events 0, 3, 4
		t.Fatalf("all StatusCounts = %v", all)
	}
}

func TestRepositoryBasics(t *testing.T) {
	m := testModel(t)
	repo := NewRepository(m)
	v := NewVectorFor(m)
	v.Set(0)
	repo.Record("t1", v)
	v.Reset()
	v.Set(1)
	repo.Record("t2", v)
	repo.Record("t2", v)

	if repo.Sims() != 3 {
		t.Fatalf("Sims = %d", repo.Sims())
	}
	if got := repo.Total().Hits(1); got != 2 {
		t.Fatalf("total hits(b) = %d", got)
	}
	c, ok := repo.Template("t2")
	if !ok || c.Sims() != 2 || c.Hits(1) != 2 {
		t.Fatalf("t2 counts = %+v, %v", c, ok)
	}
	if _, ok := repo.Template("missing"); ok {
		t.Error("missing template should not be found")
	}
	names := repo.TemplateNames()
	if len(names) != 2 || names[0] != "t1" || names[1] != "t2" {
		t.Fatalf("TemplateNames = %v", names)
	}
	unc := repo.Uncovered()
	if len(unc) != 3 { // c, d, e
		t.Fatalf("Uncovered = %v", unc)
	}
}

func TestRepositoryRecordCounts(t *testing.T) {
	m := testModel(t)
	repo := NewRepository(m)
	c := NewCountsFor(m)
	v := NewVectorFor(m)
	v.Set(2)
	c.Add(v)
	c.Add(v)
	repo.RecordCounts("batch", c)
	if repo.Sims() != 2 || repo.Total().Hits(2) != 2 {
		t.Fatal("RecordCounts did not aggregate")
	}
	repo.RecordCounts("batch", c)
	tc, _ := repo.Template("batch")
	if tc.Sims() != 4 {
		t.Fatalf("batch sims = %d, want 4", tc.Sims())
	}
}

func TestRepositoryLightlyHit(t *testing.T) {
	m := testModel(t)
	repo := NewRepository(m)
	for i := 0; i < 1000; i++ {
		v := NewVectorFor(m)
		v.Set(0) // always: well hit
		if i < 5 {
			v.Set(1) // 5 hits: lightly
		}
		repo.Record("t", v)
	}
	lh := repo.LightlyHit()
	if len(lh) != 1 || lh[0] != 1 {
		t.Fatalf("LightlyHit = %v", lh)
	}
}

func TestRepositorySaveLoadRoundTrip(t *testing.T) {
	m := testModel(t)
	if err := m.AddFamily("fam", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	repo := NewRepository(m)
	r := rng.New(1)
	for s := 0; s < 100; s++ {
		v := NewVectorFor(m)
		for i := 0; i < m.Size(); i++ {
			if r.Bool(0.3) {
				v.Set(i)
			}
		}
		repo.Record("t"+string(rune('a'+s%3)), v)
	}
	var buf bytes.Buffer
	if err := repo.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, m)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Sims() != repo.Sims() {
		t.Fatalf("loaded sims = %d, want %d", loaded.Sims(), repo.Sims())
	}
	for _, name := range repo.TemplateNames() {
		a, _ := repo.Template(name)
		b, ok := loaded.Template(name)
		if !ok || a.Sims() != b.Sims() {
			t.Fatalf("template %q not reproduced", name)
		}
		for i := 0; i < m.Size(); i++ {
			if a.Hits(i) != b.Hits(i) {
				t.Fatalf("template %q event %d: %d != %d", name, i, a.Hits(i), b.Hits(i))
			}
		}
	}
}

func TestRepositoryLoadModelMismatch(t *testing.T) {
	m := testModel(t)
	repo := NewRepository(m)
	var buf bytes.Buffer
	if err := repo.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := MustModel([]string{"a", "b", "c", "d", "x"})
	if _, err := Load(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("loading against a mismatched model should fail")
	}
	small := MustModel([]string{"a"})
	if _, err := Load(bytes.NewReader(buf.Bytes()), small); err == nil {
		t.Fatal("loading against a smaller model should fail")
	}
	if _, err := Load(strings.NewReader("not json"), m); err == nil {
		t.Fatal("loading garbage should fail")
	}
}

func TestCrossProduct(t *testing.T) {
	cp, err := NewCrossProduct("ifu", []Dim{
		{Name: "entry", Values: []string{"e0", "e1", "e2"}},
		{Name: "thread", Values: []string{"t0", "t1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cp.Size() != 6 {
		t.Fatalf("Size = %d", cp.Size())
	}
	names := cp.EventNames()
	if len(names) != 6 {
		t.Fatalf("EventNames = %v", names)
	}
	if names[0] != "ifu_e0_t0" || names[1] != "ifu_e0_t1" || names[5] != "ifu_e2_t1" {
		t.Fatalf("EventNames order = %v", names)
	}
	coords, err := cp.Coords("ifu_e1_t1")
	if err != nil || coords[0] != 1 || coords[1] != 1 {
		t.Fatalf("Coords = %v, %v", coords, err)
	}
	if _, err := cp.Coords("other_e1_t1"); err == nil {
		t.Error("Coords of foreign event should fail")
	}
	if _, err := cp.Coords("ifu_e1"); err == nil {
		t.Error("Coords with wrong arity should fail")
	}
	if _, err := cp.Coords("ifu_e9_t0"); err == nil {
		t.Error("Coords with unknown value should fail")
	}
	d, err := cp.Hamming("ifu_e0_t0", "ifu_e2_t0")
	if err != nil || d != 1 {
		t.Fatalf("Hamming = %d, %v", d, err)
	}
	d, _ = cp.Hamming("ifu_e0_t0", "ifu_e2_t1")
	if d != 2 {
		t.Fatalf("Hamming = %d, want 2", d)
	}
	d, _ = cp.Hamming("ifu_e0_t0", "ifu_e0_t0")
	if d != 0 {
		t.Fatalf("Hamming self = %d", d)
	}
	if _, err := cp.Hamming("bad", "ifu_e0_t0"); err == nil {
		t.Error("Hamming with bad first arg should fail")
	}
	if _, err := cp.Hamming("ifu_e0_t0", "bad"); err == nil {
		t.Error("Hamming with bad second arg should fail")
	}
}

func TestCrossProductValidation(t *testing.T) {
	if _, err := NewCrossProduct("", []Dim{{Name: "a", Values: []string{"x"}}}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewCrossProduct("c", nil); err == nil {
		t.Error("no dims should fail")
	}
	if _, err := NewCrossProduct("c", []Dim{{Name: "", Values: []string{"x"}}}); err == nil {
		t.Error("empty dim name should fail")
	}
	if _, err := NewCrossProduct("c", []Dim{{Name: "a"}}); err == nil {
		t.Error("dim without values should fail")
	}
	if _, err := NewCrossProduct("c", []Dim{{Name: "a", Values: []string{"x", "x"}}}); err == nil {
		t.Error("duplicate dim value should fail")
	}
	if _, err := NewCrossProduct("c", []Dim{{Name: "a", Values: []string{""}}}); err == nil {
		t.Error("empty dim value should fail")
	}
}

func TestModelCrossRegistration(t *testing.T) {
	cp, _ := NewCrossProduct("x", []Dim{{Name: "d", Values: []string{"a", "b"}}})
	m := MustModel(cp.EventNames())
	if err := m.AddCross(cp); err != nil {
		t.Fatal(err)
	}
	got, ok := m.Cross("x")
	if !ok || got != cp {
		t.Fatal("Cross lookup failed")
	}
	if err := m.AddCross(cp); err == nil {
		t.Error("duplicate cross should fail")
	}
	if err := m.AddCross(nil); err == nil {
		t.Error("nil cross should fail")
	}
	other, _ := NewCrossProduct("y", []Dim{{Name: "d", Values: []string{"q"}}})
	if err := m.AddCross(other); err == nil {
		t.Error("cross with unknown events should fail")
	}
	if names := m.CrossNames(); len(names) != 1 || names[0] != "x" {
		t.Fatalf("CrossNames = %v", names)
	}
}

func TestCrossEventNamesMatchSize(t *testing.T) {
	f := func(a, b, c uint8) bool {
		na, nb, nc := int(a%4)+1, int(b%4)+1, int(c%4)+1
		mkVals := func(prefix string, n int) []string {
			vs := make([]string, n)
			for i := range vs {
				vs[i] = prefix + string(rune('0'+i))
			}
			return vs
		}
		cp, err := NewCrossProduct("cp", []Dim{
			{Name: "x", Values: mkVals("x", na)},
			{Name: "y", Values: mkVals("y", nb)},
			{Name: "z", Values: mkVals("z", nc)},
		})
		if err != nil {
			return false
		}
		names := cp.EventNames()
		if len(names) != cp.Size() || cp.Size() != na*nb*nc {
			return false
		}
		// All names unique and all round-trip through Coords.
		seen := map[string]bool{}
		for _, n := range names {
			if seen[n] {
				return false
			}
			seen[n] = true
			coords, err := cp.Coords(n)
			if err != nil {
				return false
			}
			if cp.EventName(coords) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRepositoryMerge(t *testing.T) {
	m := testModel(t)
	a := NewRepository(m)
	b := NewRepository(m)
	v := NewVectorFor(m)
	v.Set(0)
	a.Record("t1", v)
	b.Record("t1", v)
	v.Reset()
	v.Set(1)
	b.Record("t2", v)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Sims() != 3 {
		t.Fatalf("merged sims = %d", a.Sims())
	}
	c, _ := a.Template("t1")
	if c.Sims() != 2 || c.Hits(0) != 2 {
		t.Fatalf("t1 after merge = %+v", c)
	}
	if _, ok := a.Template("t2"); !ok {
		t.Fatal("t2 missing after merge")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatal("Merge(nil) should be a no-op")
	}
}

func TestRepositoryMergeModelMismatch(t *testing.T) {
	a := NewRepository(testModel(t))
	if err := a.Merge(NewRepository(MustModel([]string{"x"}))); err == nil {
		t.Fatal("size mismatch should fail")
	}
	renamed := MustModel([]string{"a", "b", "c", "d", "z"})
	if err := a.Merge(NewRepository(renamed)); err == nil {
		t.Fatal("name mismatch should fail")
	}
}
