package coverage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rng"
)

func savedRepoBytes(t *testing.T) (*Model, []byte) {
	t.Helper()
	m := testModel(t)
	repo := NewRepository(m)
	r := rng.New(7)
	for s := 0; s < 60; s++ {
		v := NewVectorFor(m)
		for i := 0; i < m.Size(); i++ {
			if r.Bool(0.4) {
				v.Set(i)
			}
		}
		repo.Record("t"+string(rune('a'+s%4)), v)
	}
	var buf bytes.Buffer
	if err := repo.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return m, buf.Bytes()
}

// TestRepositoryLoadTruncated: every proper prefix of a saved
// repository must be rejected with an error — a crash mid-save (or a
// partially copied file) must never panic or load silently wrong data.
// (SaveFile's atomic write-rename makes such files unreachable through
// the normal path; this guards hand-copied or NFS-mangled ones.)
func TestRepositoryLoadTruncated(t *testing.T) {
	m, data := savedRepoBytes(t)
	// data ends "}\n"; every cut strictly inside the document is invalid.
	for n := 0; n < len(data)-1; n++ {
		if _, err := Load(bytes.NewReader(data[:n]), m); err == nil {
			t.Fatalf("truncation at %d/%d bytes loaded successfully", n, len(data))
		}
	}
}

// TestRepositoryLoadCorrupt: bit-flipped bytes anywhere in the document
// must never panic. (A flip inside a numeric literal can still be valid
// JSON — that is what end-to-end checksums are for — but the loader
// must stay memory-safe and structurally strict.)
func TestRepositoryLoadCorrupt(t *testing.T) {
	m, data := savedRepoBytes(t)
	for off := 0; off < len(data); off += 3 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x5a
		_, _ = Load(bytes.NewReader(mut), m) // must not panic
	}
	// Structural corruption that stays syntactically valid must error.
	var err error
	if _, err = Load(bytes.NewReader([]byte(`{"events":["only"],"sims":1}`)), m); err == nil {
		t.Fatal("wrong event list accepted")
	}
	if _, err = Load(bytes.NewReader([]byte(`{}`)), m); err == nil {
		t.Fatal("empty document accepted")
	}
}

// TestRepositorySaveFileAtomic: SaveFile over an existing (corrupt)
// file must fully replace it, and leave no temp droppings behind.
func TestRepositorySaveFileAtomic(t *testing.T) {
	m, data := savedRepoBytes(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "repo.json")
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path, m); err == nil {
		t.Fatal("corrupt half-file loaded")
	}
	repo := NewRepository(m)
	v := NewVectorFor(m)
	v.Set(0)
	repo.Record("fresh", v)
	if err := repo.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path, m)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Sims() != 1 {
		t.Fatalf("reloaded sims = %d, want 1", loaded.Sims())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just repo.json", len(entries))
	}
}
