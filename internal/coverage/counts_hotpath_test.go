package coverage

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// addNaive is the reference implementation Counts.Add is checked
// against: the old HitIDs-materializing loop.
func addNaive(c *Counts, v Vector) {
	c.sims++
	for _, id := range v.HitIDs() {
		c.hits[id]++
	}
}

// TestCountsAddMatchesNaive property-checks the word-level Add against
// the materializing reference on random vectors of awkward sizes
// (including multiples of 64 and off-by-ones around word boundaries).
func TestCountsAddMatchesNaive(t *testing.T) {
	prop := func(seed uint64, sizeSel uint8, density uint8) bool {
		sizes := []int{1, 5, 63, 64, 65, 127, 128, 200, 1024}
		n := sizes[int(sizeSel)%len(sizes)]
		r := rng.New(seed)
		v := NewVector(n)
		for i := 0; i < n; i++ {
			if r.Uint64()%256 < uint64(density) {
				v.Set(i)
			}
		}
		fast, slow := NewCounts(n), NewCounts(n)
		fast.Add(v)
		addNaive(slow, v)
		if fast.Sims() != slow.Sims() {
			return false
		}
		for i := 0; i < n; i++ {
			if fast.Hits(i) != slow.Hits(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCountsAddAllocs is the satellite's allocs-per-op assertion: the
// hottest aggregation loop in the system (one Add per simulation) must
// not allocate.
func TestCountsAddAllocs(t *testing.T) {
	c := NewCounts(1024)
	v := NewVector(1024)
	for i := 0; i < 1024; i += 3 {
		v.Set(i)
	}
	if allocs := testing.AllocsPerRun(100, func() { c.Add(v) }); allocs != 0 {
		t.Fatalf("Counts.Add allocates %.1f objects/op, want 0", allocs)
	}
}

func TestCountsAddRawAppendRawRoundTrip(t *testing.T) {
	c := NewCounts(10)
	v := NewVector(10)
	for _, id := range []int{0, 3, 7, 9} {
		v.Set(id)
	}
	c.Add(v)
	c.Add(v)

	var scratch []uint64
	hits, sims := c.AppendRaw(scratch[:0])
	if sims != 2 || len(hits) != 10 {
		t.Fatalf("AppendRaw = %d hits / %d sims, want 10 / 2", len(hits), sims)
	}

	d := NewCounts(10)
	d.AddRaw(hits, sims)
	d.AddRaw(hits, sims) // AddRaw merges, not overwrites
	if d.Sims() != 4 {
		t.Fatalf("sims after two AddRaw = %d, want 4", d.Sims())
	}
	for i := 0; i < 10; i++ {
		if d.Hits(i) != 2*c.Hits(i) {
			t.Fatalf("event %d: hits = %d, want %d", i, d.Hits(i), 2*c.Hits(i))
		}
	}

	// AppendRaw reuses the destination's capacity: no allocation once
	// the scratch has grown.
	scratch = make([]uint64, 0, 10)
	if allocs := testing.AllocsPerRun(100, func() {
		scratch, _ = c.AppendRaw(scratch[:0])
	}); allocs != 0 {
		t.Fatalf("AppendRaw into sized scratch allocates %.1f objects/op, want 0", allocs)
	}
}

func TestCountsAddRawSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddRaw with mismatched size did not panic")
		}
	}()
	NewCounts(4).AddRaw(make([]uint64, 5), 1)
}

func TestCountsReset(t *testing.T) {
	c := NewCounts(8)
	v := NewVector(8)
	v.Set(2)
	v.Set(5)
	c.Add(v)
	c.Reset()
	if c.Sims() != 0 {
		t.Fatalf("sims after Reset = %d, want 0", c.Sims())
	}
	for i := 0; i < 8; i++ {
		if c.Hits(i) != 0 {
			t.Fatalf("event %d hits = %d after Reset, want 0", i, c.Hits(i))
		}
	}
	if c.Len() != 8 {
		t.Fatalf("Len after Reset = %d, want 8", c.Len())
	}
	// Reset keeps the backing array: repeated reset/add cycles allocate
	// nothing.
	if allocs := testing.AllocsPerRun(100, func() {
		c.Reset()
		c.Add(v)
	}); allocs != 0 {
		t.Fatalf("Reset+Add cycle allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkCountsAdd is the per-simulation aggregation hot loop: one
// coverage vector merged into a running aggregate. allocs/op is the
// number the satellite task pins at zero.
func BenchmarkCountsAdd(b *testing.B) {
	for _, density := range []struct {
		name string
		step int
	}{{"sparse", 37}, {"dense", 3}} {
		b.Run(density.name, func(b *testing.B) {
			c := NewCounts(1024)
			v := NewVector(1024)
			for i := 0; i < 1024; i += density.step {
				v.Set(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Add(v)
			}
		})
	}
}

// BenchmarkCountsMergePath is the chunk-completion path: a lane's
// scratch aggregate merged into the job total, then reset for reuse.
func BenchmarkCountsMergePath(b *testing.B) {
	total := NewCounts(1024)
	scratch := NewCounts(1024)
	v := NewVector(1024)
	for i := 0; i < 1024; i += 5 {
		v.Set(i)
	}
	for i := 0; i < 64; i++ {
		scratch.Add(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total.Merge(scratch)
	}
}
