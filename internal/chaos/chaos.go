// Package chaos is the crash-injection harness for the journaled flow
// (DESIGN.md §10). It drives one reproducible campaign three ways — an
// uninterrupted baseline, a run killed at an arbitrary journal-append
// boundary (optionally mid-frame, simulating a torn write), and a
// resumed run recovering that journal — and checks the resumed run's
// result is bit-identical to the baseline's.
//
// The kill point is the journal itself: Writer.FailAppends makes the
// n-th append fail with journal.ErrInjected after optionally writing a
// partial frame, which is exactly the file state a SIGKILL between (or
// inside) the write and the fsync leaves behind.
package chaos

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"

	"repro/internal/core"
	"repro/internal/journal"
)

// Campaign is one reproducible journaled run: NewFlow must build
// identical flows (same unit, same config) journaled at the given path
// — typically core.New with Config.Journal set, which starts fresh on a
// missing file and resumes an existing one — and Run must drive a flow
// through the same campaign with the same arguments every time. Run's
// result is compared across trials with reflect.DeepEqual.
type Campaign struct {
	NewFlow func(journal string) (*core.Flow, error)
	Run     func(*core.Flow) (any, error)
}

// Baseline runs the campaign journaled to completion and returns the
// result plus the finished journal's record count — the number of
// distinct kill points a Sweep will exercise.
func (c Campaign) Baseline(path string) (any, int, error) {
	flow, err := c.NewFlow(path)
	if err != nil {
		return nil, 0, err
	}
	defer flow.Close()
	want, err := c.Run(flow)
	if err != nil {
		return nil, 0, err
	}
	return want, flow.Journal().Writer().Appends(), nil
}

// CrashAndResume kills one journaled run at append index kill (0-based
// across the whole record stream; the flow header is append 0) with
// tear bytes of the doomed frame reaching the file, then resumes the
// journal in a fresh flow and runs the campaign to completion,
// returning the resumed run's result. The killed run must die with
// journal.ErrInjected — any other outcome is an error.
func (c Campaign) CrashAndResume(path string, kill, tear int) (any, error) {
	victim, err := c.NewFlow(path)
	if err != nil {
		return nil, err
	}
	victim.Journal().Writer().FailAppends(kill, tear)
	_, err = c.Run(victim)
	victim.Close()
	if !errors.Is(err, journal.ErrInjected) {
		return nil, fmt.Errorf("chaos: kill=%d tear=%d: run did not die at the injected append: %v", kill, tear, err)
	}

	survivor, err := c.NewFlow(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: kill=%d tear=%d: resume: %w", kill, tear, err)
	}
	defer survivor.Close()
	got, err := c.Run(survivor)
	if err != nil {
		return nil, fmt.Errorf("chaos: kill=%d tear=%d: resumed run: %w", kill, tear, err)
	}
	return got, nil
}

// Sweep runs the baseline, then kills and resumes the campaign at
// every append boundary after the header (kill = 1 .. records-1), once
// per tear width in tears (0 = clean crash at the boundary, > 0 = that
// many bytes of the next frame torn onto disk). Every resumed result
// must DeepEqual the baseline's. It returns the number of crash+resume
// trials that ran.
func (c Campaign) Sweep(dir string, tears []int) (int, error) {
	want, records, err := c.Baseline(filepath.Join(dir, "baseline.journal"))
	if err != nil {
		return 0, fmt.Errorf("chaos: baseline: %w", err)
	}
	trials := 0
	for kill := 1; kill < records; kill++ {
		for _, tear := range tears {
			path := filepath.Join(dir, fmt.Sprintf("kill%03d_tear%d.journal", kill, tear))
			got, err := c.CrashAndResume(path, kill, tear)
			if err != nil {
				return trials, err
			}
			if !reflect.DeepEqual(got, want) {
				return trials, fmt.Errorf("chaos: kill=%d tear=%d: resumed result diverged from baseline", kill, tear)
			}
			trials++
		}
	}
	return trials, nil
}
