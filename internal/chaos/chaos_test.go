package chaos

import (
	"context"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/duv/iounit"
)

// chaosConfig is deliberately tiny: the sweep reruns the campaign twice
// per kill point, so every simulation here is paid ~2x(records) times.
func chaosConfig() core.Config {
	return core.Config{
		Seed:                  21,
		Workers:               3,
		CorpusSimsPerTemplate: 40,
		TopTemplates:          2,
		Subranges:             2,
		SampleTemplates:       6,
		SampleSims:            8,
		OptIterations:         3,
		OptDirections:         3,
		OptSims:               10,
		BestSims:              60,
	}
}

func chaosCampaign() Campaign {
	return Campaign{
		NewFlow: func(journal string) (*core.Flow, error) {
			cfg := chaosConfig()
			cfg.Journal = journal
			return core.New(iounit.New(), cfg)
		},
		Run: func(f *core.Flow) (any, error) {
			reports, err := f.RunFamilyRefined(context.Background(), iounit.FamilyName, 0.4, 1)
			if err != nil {
				return nil, err
			}
			return reports, nil
		},
	}
}

// TestKillAtEveryAppendBoundary is the PR's central robustness
// property: a flow killed at ANY journal append — cleanly at the record
// boundary, or mid-frame with a torn partial write on disk — must
// resume into a bit-identical result. The sweep covers every record the
// campaign journals.
func TestKillAtEveryAppendBoundary(t *testing.T) {
	before := runtime.NumGoroutine()

	trials, err := chaosCampaign().Sweep(t.TempDir(), []int{0, 7})
	if err != nil {
		t.Fatal(err)
	}
	if trials < 20 {
		t.Fatalf("sweep ran only %d trials; the campaign journals too few records to be a meaningful test", trials)
	}
	t.Logf("chaos sweep: %d crash+resume trials, all bit-identical", trials)

	// Every killed flow was Closed; its workers must be gone. Allow the
	// runtime a moment to retire exiting goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before sweep, %d after", before, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestCrashAndResumeRejectsForeignFlow: the harness must not be able to
// resume a journal into a flow with a different config — the guard the
// whole bit-identity argument rests on.
func TestCrashAndResumeRejectsForeignFlow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "victim.journal")
	c := chaosCampaign()
	victim, err := c.NewFlow(path)
	if err != nil {
		t.Fatal(err)
	}
	victim.Journal().Writer().FailAppends(3, 0)
	if _, err := c.Run(victim); err == nil {
		t.Fatal("injected kill did not fire")
	}
	victim.Close()

	// Auto-resume through core.New must reject the journal: the victim's
	// journal exists but was written under a different seed.
	cfg := chaosConfig()
	cfg.Seed = 99
	cfg.Journal = path
	if other, err := core.New(iounit.New(), cfg); err == nil {
		other.Close()
		t.Fatal("foreign flow resumed a mismatched journal")
	}
}
