package lease

import (
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/obs"
)

// openFDs counts this process's open file descriptors via /proc.
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("cannot enumerate fds: %v", err)
	}
	return len(ents)
}

// dirEntries returns the campaign directory's entry names — the
// tempfile/guard-leak check for failed claims.
func dirEntries(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names
}

// TestAcquireFailpoint verifies the lease/claim injection point: the
// claim fails with the failpoint sentinel before any guard file or
// record is written, and a clean retry then succeeds at epoch 1 as if
// the faulted attempt never happened.
func TestAcquireFailpoint(t *testing.T) {
	defer failpoint.Default.Clear("lease/claim")
	m := newManager(t, "r1", time.Second)
	dir := campaignDir(t)

	failpoint.Default.Set("lease/claim", failpoint.Policy{Kind: failpoint.KindError, Rate: 1, Times: 1})
	if _, err := m.Acquire(dir, "c000001"); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Acquire under failpoint = %v, want ErrInjected", err)
	}
	if names := dirEntries(t, dir); len(names) != 0 {
		t.Fatalf("faulted claim left files behind: %v", names)
	}

	h, err := m.Acquire(dir, "c000001")
	if err != nil {
		t.Fatalf("clean Acquire after faulted one: %v", err)
	}
	defer h.Release()
	if h.Epoch() != 1 {
		t.Fatalf("epoch after faulted claim = %d, want 1 (no epoch burned)", h.Epoch())
	}
}

// TestAcquireErrorPathsLeakNothing drives Acquire's failure paths —
// injected claim faults and ErrHeld contention against a live owner —
// in a loop and asserts neither file descriptors nor directory entries
// (guard files, atomicfile temps) accumulate.
func TestAcquireErrorPathsLeakNothing(t *testing.T) {
	defer failpoint.Default.Clear("lease/claim")
	m1 := newManager(t, "r1", time.Minute)
	m2 := newManager(t, "r2", time.Minute)
	dir := campaignDir(t)

	h, err := m1.Acquire(dir, "c000001")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	base := openFDs(t)
	baseEntries := len(dirEntries(t, dir))

	for i := 0; i < 20; i++ {
		if _, err := m2.Acquire(dir, "c000001"); !errors.Is(err, ErrHeld) {
			t.Fatalf("Acquire against live lease = %v, want ErrHeld", err)
		}
	}
	failpoint.Default.Set("lease/claim", failpoint.Policy{Kind: failpoint.KindError, Rate: 1})
	for i := 0; i < 20; i++ {
		if _, err := m2.Acquire(dir, "c000001"); !errors.Is(err, failpoint.ErrInjected) {
			t.Fatalf("Acquire under failpoint = %v, want ErrInjected", err)
		}
	}
	failpoint.Default.Clear("lease/claim")

	if got := openFDs(t); got > base {
		t.Fatalf("open fds grew from %d to %d across failed claims", base, got)
	}
	if got := len(dirEntries(t, dir)); got != baseEntries {
		t.Fatalf("campaign dir grew from %d to %d entries across failed claims: %v",
			baseEntries, got, dirEntries(t, dir))
	}
}

// TestRenewFailpointFences verifies the lease/renew injection point: an
// injected renewal failure fences the handle conservatively — Check
// reports ErrFenced, OnLost fires exactly once, and lease.lost counts
// one loss.
func TestRenewFailpointFences(t *testing.T) {
	defer failpoint.Default.Clear("lease/renew")
	rec := obs.NewRecorder()
	m, err := NewManager(Options{Owner: "r1", TTL: 60 * time.Millisecond, Rec: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	dir := campaignDir(t)

	h, err := m.Acquire(dir, "c000001")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	var lost atomic.Int32
	h.OnLost(func() { lost.Add(1) })

	failpoint.Default.Set("lease/renew", failpoint.Policy{Kind: failpoint.KindError, Rate: 1, Times: 1})
	deadline := time.Now().Add(5 * time.Second)
	for h.Check() == nil {
		if time.Now().After(deadline) {
			t.Fatalf("handle never fenced after injected renewal failure")
		}
		time.Sleep(time.Millisecond)
	}
	if err := h.Check(); !errors.Is(err, ErrFenced) {
		t.Fatalf("Check = %v, want ErrFenced", err)
	}
	time.Sleep(50 * time.Millisecond) // a further renewal tick must not re-fire OnLost
	if got := lost.Load(); got != 1 {
		t.Fatalf("OnLost fired %d times, want exactly once", got)
	}
	if got := rec.Counter("lease.lost").Value(); got != 1 {
		t.Fatalf("lease.lost counter = %d, want 1", got)
	}
}

// TestLeaseVerifyStealRace races Verify against a concurrent steal: a
// suspended holder sleeps past its TTL, a peer adopts the campaign at a
// higher epoch, and then many goroutines Verify the stale handle at
// once. Every Verify must report ErrFenced, and the fence must trip
// exactly once (one OnLost call, one lease.lost increment) no matter
// how many verifiers race.
func TestLeaseVerifyStealRace(t *testing.T) {
	rec := obs.NewRecorder()
	m1, err := NewManager(Options{Owner: "r1", TTL: 60 * time.Millisecond, Rec: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	m2 := newManager(t, "r2", 60*time.Millisecond)
	dir := campaignDir(t)

	h1, err := m1.Acquire(dir, "c000001")
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Release()
	var lost atomic.Int32
	h1.OnLost(func() { lost.Add(1) })

	// Simulate a stalled replica: renewals pause, the lease expires, and
	// the peer adopts the campaign at the next epoch.
	h1.Suspend(true)
	time.Sleep(120 * time.Millisecond)
	h2, err := m2.Acquire(dir, "c000001")
	if err != nil {
		t.Fatalf("steal after expiry: %v", err)
	}
	defer h2.Release()
	if !h2.Stolen() || h2.Epoch() != h1.Epoch()+1 {
		t.Fatalf("steal: stolen=%v epoch=%d, want stolen at epoch %d", h2.Stolen(), h2.Epoch(), h1.Epoch()+1)
	}

	const verifiers = 8
	errs := make([]error, verifiers)
	var wg sync.WaitGroup
	for i := 0; i < verifiers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = h1.Verify()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrFenced) {
			t.Fatalf("verifier %d: Verify = %v, want ErrFenced", i, err)
		}
	}
	if got := lost.Load(); got != 1 {
		t.Fatalf("OnLost fired %d times across %d racing verifiers, want exactly once", got, verifiers)
	}
	if got := rec.Counter("lease.lost").Value(); got != 1 {
		t.Fatalf("lease.lost counter = %d, want 1", got)
	}
	// The new owner is unaffected by the old handle's fencing.
	if err := h2.Verify(); err != nil {
		t.Fatalf("new owner's Verify: %v", err)
	}
}
