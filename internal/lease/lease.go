// Package lease implements campaign ownership for a fleet of cdgd
// replicas sharing one data root (DESIGN.md §12). A lease is a small
// JSON record (lease.json) inside a campaign directory, written with
// the same write-fsync-rename discipline as every other service
// artifact (internal/atomicfile), carrying the holder's identity, a
// monotonically increasing fencing epoch, and a renewal deadline.
//
// The protocol has three moving parts:
//
//   - Acquisition. A replica may claim a campaign whose lease is
//     absent, released, expired, or already its own. Claiming epoch
//     N is arbitrated by an O_EXCL guard file (lease.epoch.N): the
//     filesystem guarantees at most one creator, so at most one owner
//     ever holds a given epoch, and epochs only grow.
//
//   - Renewal. A background goroutine re-reads the record and rewrites
//     RenewedAt every TTL/3. A renewal that finds a higher epoch (or a
//     different owner, or an I/O failure) marks the handle fenced and
//     fires the OnLost callback — the holder must stop working.
//
//   - Fencing. Every write the holder performs on the campaign's
//     behalf — journal appends via journal.Writer.SetFence, state and
//     report writes via Verify — carries the handle's epoch and is
//     rejected with ErrFenced once a higher epoch exists. A replica
//     that was paused past its TTL therefore cannot corrupt the
//     campaign an adopter is now running.
//
// Kill -9 is the expected failure mode: a dead holder simply stops
// renewing, the lease expires after TTL, and any peer's next scan
// adopts the campaign (steal-on-expiry). The journal's replay makes
// the adopted run bit-identical to an uninterrupted one.
package lease

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/failpoint"
	"repro/internal/obs"
)

// File is the lease record's name inside a campaign directory.
const File = "lease.json"

// guardPrefix names the per-epoch O_EXCL claim markers.
const guardPrefix = "lease.epoch."

var (
	// ErrHeld reports an acquisition attempt on a lease another owner
	// holds and is still renewing.
	ErrHeld = errors.New("lease: held by another owner")

	// ErrFenced reports a write attempted with a superseded epoch: a
	// newer owner exists and the caller must abandon the campaign.
	ErrFenced = errors.New("lease: fenced")

	// ErrReleased reports an operation on a handle after Release.
	ErrReleased = errors.New("lease: released")
)

// Record is the persisted lease state. TTLMillis rather than a
// time.Duration keeps the JSON stable and human-readable.
type Record struct {
	Campaign  string    `json:"campaign"`
	Owner     string    `json:"owner"`
	Epoch     uint64    `json:"epoch"`
	RenewedAt time.Time `json:"renewed_at"`
	TTLMillis int64     `json:"ttl_ms"`
	// Released marks a clean hand-off (drain, completion): the lease is
	// immediately claimable without waiting for expiry.
	Released bool `json:"released,omitempty"`
}

// TTL returns the record's time-to-live as a duration.
func (r *Record) TTL() time.Duration { return time.Duration(r.TTLMillis) * time.Millisecond }

// Expired reports whether the lease no longer protects its campaign at
// the given instant.
func (r *Record) Expired(now time.Time) bool {
	return r.Released || !now.Before(r.RenewedAt.Add(r.TTL()))
}

// Peek reads the lease record in dir, returning (nil, nil) when no
// lease has ever been written.
func Peek(dir string) (*Record, error) {
	data, err := os.ReadFile(filepath.Join(dir, File))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("lease: decoding %s: %w", filepath.Join(dir, File), err)
	}
	return &rec, nil
}

// Options configures a Manager.
type Options struct {
	// Owner is this replica's identity (required, unique per live
	// replica — cdgd defaults to host-pid).
	Owner string

	// TTL is how long a lease protects its campaign without renewal
	// (default 10s). Renewals run every TTL/3.
	TTL time.Duration

	// Rec counts lease.* metrics (acquired, stolen, renewed, lost,
	// released, conflicts). nil disables.
	Rec *obs.Recorder

	// Log receives structured lease lifecycle events. nil discards.
	Log *slog.Logger
}

// Manager acquires and renews leases on behalf of one replica.
type Manager struct {
	owner string
	ttl   time.Duration
	rec   *obs.Recorder
	log   *slog.Logger

	mu      sync.Mutex
	handles map[*Handle]struct{}
	closed  bool
}

// NewManager validates opts and returns a Manager.
func NewManager(opts Options) (*Manager, error) {
	if opts.Owner == "" {
		return nil, errors.New("lease: Options.Owner is required")
	}
	if strings.ContainsAny(opts.Owner, "\n\"") {
		return nil, fmt.Errorf("lease: invalid owner %q", opts.Owner)
	}
	if opts.TTL <= 0 {
		opts.TTL = 10 * time.Second
	}
	return &Manager{
		owner:   opts.Owner,
		ttl:     opts.TTL,
		rec:     opts.Rec,
		log:     obs.OrNop(opts.Log),
		handles: map[*Handle]struct{}{},
	}, nil
}

// Owner returns the manager's replica identity.
func (m *Manager) Owner() string { return m.owner }

// TTL returns the manager's lease time-to-live.
func (m *Manager) TTL() time.Duration { return m.ttl }

// Claimable reports whether the record (nil = never leased) could be
// acquired by this manager's owner right now: free, released, expired,
// or already ours (a previous incarnation of this replica).
func (m *Manager) Claimable(rec *Record) bool {
	return rec == nil || rec.Owner == m.owner || rec.Expired(time.Now())
}

// Acquire claims the campaign lease in dir, bumping the fencing epoch
// past every epoch ever issued there, and starts the renewal goroutine.
// It returns ErrHeld (possibly wrapped) when another live owner holds
// the lease or wins the claim race.
func (m *Manager) Acquire(dir, campaign string) (*Handle, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrReleased
	}
	m.mu.Unlock()
	// lease/claim simulates a data root that refuses the claim (NFS
	// hiccup, permission flap) before any guard or record is touched.
	if err := failpoint.Eval("lease/claim"); err != nil {
		return nil, fmt.Errorf("lease: claiming %s: %w", campaign, err)
	}
	for attempt := 0; attempt < 4; attempt++ {
		rec, err := Peek(dir)
		if err != nil {
			return nil, err
		}
		if rec != nil && rec.Owner != m.owner && !rec.Expired(time.Now()) {
			return nil, fmt.Errorf("%w: campaign %s held by %s (epoch %d, expires %s)",
				ErrHeld, campaign, rec.Owner, rec.Epoch,
				rec.RenewedAt.Add(rec.TTL()).Format(time.RFC3339))
		}
		var base uint64
		if rec != nil {
			base = rec.Epoch
		}
		maxGuard, err := maxGuardEpoch(dir)
		if err != nil {
			return nil, err
		}
		if maxGuard > base {
			base = maxGuard
		}
		epoch := base + 1
		if err := claimEpoch(dir, epoch); err != nil {
			if os.IsExist(err) {
				// A peer is claiming concurrently; give it a moment to write
				// its record, then re-read. If its lease turns out live we
				// return ErrHeld on the next pass.
				time.Sleep(time.Duration(2+attempt*3) * time.Millisecond)
				continue
			}
			return nil, err
		}
		now := time.Now().UTC()
		newRec := &Record{
			Campaign:  campaign,
			Owner:     m.owner,
			Epoch:     epoch,
			RenewedAt: now,
			TTLMillis: m.ttl.Milliseconds(),
		}
		if err := writeRecord(dir, newRec); err != nil {
			return nil, err
		}
		dropStaleGuards(dir, epoch)
		stolen := rec != nil && rec.Owner != m.owner && !rec.Released
		if stolen {
			m.counter("lease.stolen").Inc()
			m.log.Info("lease: stolen from expired owner",
				"campaign", campaign, "prev_owner", rec.Owner, "prev_epoch", rec.Epoch, "epoch", epoch)
		} else {
			m.log.Debug("lease: acquired", "campaign", campaign, "epoch", epoch)
		}
		m.counter("lease.acquired").Inc()
		h := &Handle{
			m:        m,
			dir:      dir,
			campaign: campaign,
			epoch:    epoch,
			stolen:   stolen,
			stop:     make(chan struct{}),
			done:     make(chan struct{}),
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			close(h.done)
			h.writeReleased()
			return nil, ErrReleased
		}
		m.handles[h] = struct{}{}
		m.mu.Unlock()
		go h.renewLoop()
		return h, nil
	}
	m.counter("lease.conflicts").Inc()
	return nil, fmt.Errorf("%w: campaign %s claim contended", ErrHeld, campaign)
}

// Close releases every live handle (marking their records released so
// peers can adopt immediately) and refuses further acquisitions.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	hs := make([]*Handle, 0, len(m.handles))
	for h := range m.handles {
		hs = append(hs, h)
	}
	m.mu.Unlock()
	for _, h := range hs {
		h.Release()
	}
}

func (m *Manager) counter(name string) *obs.Counter { return m.rec.Counter(name) }

// Handle is one held lease. All methods are safe for concurrent use.
type Handle struct {
	m        *Manager
	dir      string
	campaign string
	epoch    uint64
	stolen   bool

	fenced    atomic.Bool
	suspended atomic.Bool
	released  atomic.Bool

	mu     sync.Mutex
	onLost func()

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// Epoch returns the handle's fencing epoch.
func (h *Handle) Epoch() uint64 { return h.epoch }

// Campaign returns the campaign id the lease protects.
func (h *Handle) Campaign() string { return h.campaign }

// Stolen reports whether this acquisition displaced another owner's
// expired lease (i.e. the campaign was adopted, not started fresh).
func (h *Handle) Stolen() bool { return h.stolen }

// OnLost registers f to run (once, from the renewal goroutine) when the
// handle is fenced — typically canceling the campaign's context. A
// handle that is already fenced runs f immediately.
func (h *Handle) OnLost(f func()) {
	h.mu.Lock()
	h.onLost = f
	h.mu.Unlock()
	if h.fenced.Load() {
		h.fireLost()
	}
}

// Check is the fast fencing probe, suitable for per-append use: it
// consults the renewal goroutine's view and returns ErrFenced (wrapped,
// carrying both epochs' identities) once ownership is lost.
func (h *Handle) Check() error {
	if h.fenced.Load() {
		return fmt.Errorf("%w: campaign %s epoch %d superseded (owner %s)",
			ErrFenced, h.campaign, h.epoch, h.m.owner)
	}
	return nil
}

// Verify is the slow fencing probe for rare, high-stakes writes (state
// transitions, report.json): it re-reads the lease record from disk and
// fences the handle if the epoch moved on.
func (h *Handle) Verify() error {
	if err := h.Check(); err != nil {
		return err
	}
	rec, err := Peek(h.dir)
	if err != nil {
		return err
	}
	if rec == nil || rec.Owner != h.m.owner || rec.Epoch != h.epoch {
		h.markLost(rec)
		return h.Check()
	}
	return nil
}

// Suspend pauses (true) or resumes (false) the renewal goroutine
// without releasing the lease — the chaos seam that simulates a replica
// stalled past its TTL (the lease expires, a peer steals it, and this
// handle fences on its next renewal or Verify).
func (h *Handle) Suspend(v bool) { h.suspended.Store(v) }

// Release stops renewing and, when the lease is still ours, rewrites
// the record as released so peers can claim it without waiting for
// expiry. Idempotent.
func (h *Handle) Release() {
	if h.released.Swap(true) {
		return
	}
	h.stopOnce.Do(func() { close(h.stop) })
	<-h.done
	if h.fenced.Load() {
		return // not ours to release any more
	}
	h.writeReleased()
	h.m.counter("lease.released").Inc()
	h.m.mu.Lock()
	delete(h.m.handles, h)
	h.m.mu.Unlock()
}

func (h *Handle) writeReleased() {
	rec, err := Peek(h.dir)
	if err != nil || rec == nil || rec.Owner != h.m.owner || rec.Epoch != h.epoch {
		return // superseded (or unreadable): leave the current record alone
	}
	rec.Released = true
	rec.RenewedAt = time.Now().UTC()
	writeRecord(h.dir, rec)
}

// renewLoop rewrites RenewedAt every TTL/3 until the handle is released
// or fenced.
func (h *Handle) renewLoop() {
	defer close(h.done)
	interval := h.m.ttl / 3
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
		}
		if h.suspended.Load() {
			continue
		}
		// lease/renew simulates renewal failure (delay models a stalled
		// data root and is not an error): the handle fences conservatively
		// exactly as it would on a real write failure.
		if err := failpoint.Eval("lease/renew"); err != nil {
			h.markLost(nil)
			return
		}
		rec, err := Peek(h.dir)
		if err != nil || rec == nil || rec.Owner != h.m.owner || rec.Epoch != h.epoch {
			h.markLost(rec)
			return
		}
		rec.RenewedAt = time.Now().UTC()
		if err := writeRecord(h.dir, rec); err != nil {
			// A data root we cannot write is a data root whose lease we
			// cannot defend: fence conservatively rather than run past TTL.
			h.markLost(rec)
			return
		}
		h.m.counter("lease.renewed").Inc()
	}
}

// markLost fences the handle and fires OnLost once.
func (h *Handle) markLost(cur *Record) {
	if h.fenced.Swap(true) {
		return
	}
	h.m.counter("lease.lost").Inc()
	if cur != nil {
		h.m.log.Warn("lease: lost",
			"campaign", h.campaign, "epoch", h.epoch,
			"new_owner", cur.Owner, "new_epoch", cur.Epoch)
	} else {
		h.m.log.Warn("lease: lost", "campaign", h.campaign, "epoch", h.epoch)
	}
	h.fireLost()
}

func (h *Handle) fireLost() {
	h.mu.Lock()
	f := h.onLost
	h.onLost = nil
	h.mu.Unlock()
	if f != nil {
		f()
	}
}

// writeRecord persists the record crash-safely.
func writeRecord(dir string, rec *Record) error {
	return atomicfile.WriteFile(filepath.Join(dir, File), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rec)
	})
}

// claimEpoch creates the O_EXCL guard file arbitrating epoch ownership.
func claimEpoch(dir string, epoch uint64) error {
	f, err := os.OpenFile(filepath.Join(dir, guardPrefix+strconv.FormatUint(epoch, 10)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	return f.Close()
}

// maxGuardEpoch scans dir for claim markers and returns the highest
// epoch ever claimed (0 when none) — this keeps epochs monotonic even
// when a claimer died between creating its guard and writing its
// record.
func maxGuardEpoch(dir string) (uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var max uint64
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), guardPrefix) {
			continue
		}
		if n, err := strconv.ParseUint(strings.TrimPrefix(e.Name(), guardPrefix), 10, 64); err == nil && n > max {
			max = n
		}
	}
	return max, nil
}

// dropStaleGuards removes claim markers below the now-current epoch;
// they have served their arbitration purpose. Best-effort.
func dropStaleGuards(dir string, current uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), guardPrefix) {
			continue
		}
		if n, err := strconv.ParseUint(strings.TrimPrefix(e.Name(), guardPrefix), 10, 64); err == nil && n < current {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}
