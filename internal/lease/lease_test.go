package lease

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func newManager(t *testing.T, owner string, ttl time.Duration) *Manager {
	t.Helper()
	m, err := NewManager(Options{Owner: owner, TTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func campaignDir(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "c000001")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestAcquireReleaseCycle(t *testing.T) {
	m := newManager(t, "r1", time.Second)
	dir := campaignDir(t)

	h, err := m.Acquire(dir, "c000001")
	if err != nil {
		t.Fatal(err)
	}
	if h.Epoch() != 1 {
		t.Fatalf("first epoch = %d, want 1", h.Epoch())
	}
	if h.Stolen() {
		t.Fatal("fresh acquisition reported as stolen")
	}
	if err := h.Check(); err != nil {
		t.Fatalf("Check on held lease: %v", err)
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("Verify on held lease: %v", err)
	}
	rec, err := Peek(dir)
	if err != nil || rec == nil {
		t.Fatalf("Peek = %v, %v", rec, err)
	}
	if rec.Owner != "r1" || rec.Epoch != 1 || rec.Released {
		t.Fatalf("record = %+v", rec)
	}

	h.Release()
	rec, err = Peek(dir)
	if err != nil || rec == nil || !rec.Released {
		t.Fatalf("after Release: record = %+v, err %v", rec, err)
	}

	// A released lease is instantly claimable, with a higher epoch.
	h2, err := m.Acquire(dir, "c000001")
	if err != nil {
		t.Fatal(err)
	}
	if h2.Epoch() <= h.Epoch() {
		t.Fatalf("reacquired epoch %d not above released epoch %d", h2.Epoch(), h.Epoch())
	}
	h2.Release()
}

func TestAcquireHeldByLiveOwner(t *testing.T) {
	m1 := newManager(t, "r1", time.Minute)
	m2 := newManager(t, "r2", time.Minute)
	dir := campaignDir(t)

	h, err := m1.Acquire(dir, "c000001")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if _, err := m2.Acquire(dir, "c000001"); !errors.Is(err, ErrHeld) {
		t.Fatalf("second owner's Acquire err = %v, want ErrHeld", err)
	}
}

// TestStealOnExpiry is the adoption path: a holder that stops renewing
// (kill -9, stall) loses the campaign after TTL, the thief's epoch
// fences the original, and the original handle notices via Verify and
// OnLost.
func TestStealOnExpiry(t *testing.T) {
	ttl := 150 * time.Millisecond
	m1 := newManager(t, "r1", ttl)
	m2 := newManager(t, "r2", ttl)
	dir := campaignDir(t)

	h1, err := m1.Acquire(dir, "c000001")
	if err != nil {
		t.Fatal(err)
	}
	lost := make(chan struct{})
	var once sync.Once
	h1.OnLost(func() { once.Do(func() { close(lost) }) })
	h1.Suspend(true) // simulate a stalled replica: lease expires

	// Until expiry the lease is not stealable.
	if _, err := m2.Acquire(dir, "c000001"); !errors.Is(err, ErrHeld) {
		t.Fatalf("pre-expiry Acquire err = %v, want ErrHeld", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	var h2 *Handle
	for {
		h2, err = m2.Acquire(dir, "c000001")
		if err == nil {
			break
		}
		if !errors.Is(err, ErrHeld) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer h2.Release()
	if !h2.Stolen() {
		t.Fatal("steal not reported as stolen")
	}
	if h2.Epoch() <= h1.Epoch() {
		t.Fatalf("thief epoch %d not above victim epoch %d", h2.Epoch(), h1.Epoch())
	}

	// The victim's slow probe fences immediately; its fast probe follows.
	if err := h1.Verify(); !errors.Is(err, ErrFenced) {
		t.Fatalf("victim Verify err = %v, want ErrFenced", err)
	}
	if err := h1.Check(); !errors.Is(err, ErrFenced) {
		t.Fatalf("victim Check err = %v, want ErrFenced", err)
	}
	select {
	case <-lost:
	case <-time.After(2 * time.Second):
		t.Fatal("OnLost never fired")
	}

	// Releasing a fenced handle must not clobber the thief's record.
	h1.Release()
	rec, err := Peek(dir)
	if err != nil || rec == nil {
		t.Fatalf("Peek = %v, %v", rec, err)
	}
	if rec.Owner != "r2" || rec.Released {
		t.Fatalf("thief's record clobbered by fenced release: %+v", rec)
	}
}

// TestRenewalExtendsLease: a healthy holder's lease stays live well past
// the TTL because the renewal goroutine keeps pushing RenewedAt.
func TestRenewalExtendsLease(t *testing.T) {
	ttl := 120 * time.Millisecond
	m1 := newManager(t, "r1", ttl)
	m2 := newManager(t, "r2", ttl)
	dir := campaignDir(t)

	h, err := m1.Acquire(dir, "c000001")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	time.Sleep(3 * ttl)
	if _, err := m2.Acquire(dir, "c000001"); !errors.Is(err, ErrHeld) {
		t.Fatalf("renewed lease was stealable after 3x TTL: err = %v", err)
	}
	if err := h.Check(); err != nil {
		t.Fatalf("healthy holder fenced: %v", err)
	}
}

// TestConcurrentClaimSingleWinner: many managers racing for one free
// lease produce exactly one holder per epoch — the O_EXCL arbitration.
func TestConcurrentClaimSingleWinner(t *testing.T) {
	dir := campaignDir(t)
	const racers = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	winners := map[uint64]int{}
	for i := 0; i < racers; i++ {
		m := newManager(t, "racer"+string(rune('a'+i)), time.Minute)
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := m.Acquire(dir, "c000001")
			if err != nil {
				return
			}
			mu.Lock()
			winners[h.Epoch()]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(winners) == 0 {
		t.Fatal("no racer acquired the free lease")
	}
	for epoch, n := range winners {
		if n != 1 {
			t.Fatalf("epoch %d acquired by %d racers, want at most 1", epoch, n)
		}
	}
}

// TestEpochMonotonicAcrossCrashedClaims: a claimer that died between
// creating its guard file and writing its record must not make its
// epoch reusable.
func TestEpochMonotonicAcrossCrashedClaims(t *testing.T) {
	dir := campaignDir(t)
	// Simulate the half-claim: guard for epoch 7 exists, no record.
	if err := claimEpoch(dir, 7); err != nil {
		t.Fatal(err)
	}
	m := newManager(t, "r1", time.Minute)
	h, err := m.Acquire(dir, "c000001")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if h.Epoch() != 8 {
		t.Fatalf("epoch = %d, want 8 (past the orphaned guard)", h.Epoch())
	}
}

func TestManagerCloseReleasesAll(t *testing.T) {
	m, err := NewManager(Options{Owner: "r1", TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	dir := campaignDir(t)
	if _, err := m.Acquire(dir, "c000001"); err != nil {
		t.Fatal(err)
	}
	m.Close()
	rec, err := Peek(dir)
	if err != nil || rec == nil || !rec.Released {
		t.Fatalf("after manager Close: record = %+v, err %v", rec, err)
	}
	if _, err := m.Acquire(dir, "c000001"); !errors.Is(err, ErrReleased) {
		t.Fatalf("Acquire after Close err = %v, want ErrReleased", err)
	}
}

func TestOwnerSelfReacquire(t *testing.T) {
	m := newManager(t, "r1", time.Minute)
	dir := campaignDir(t)
	h1, err := m.Acquire(dir, "c000001")
	if err != nil {
		t.Fatal(err)
	}
	// The same owner restarting (same identity, dead renewals) may
	// reclaim its own un-expired lease; the epoch still advances so the
	// old incarnation's writes are fenced.
	h2, err := m.Acquire(dir, "c000001")
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if h2.Epoch() <= h1.Epoch() {
		t.Fatalf("self-reacquire epoch %d did not advance past %d", h2.Epoch(), h1.Epoch())
	}
	if err := h1.Verify(); !errors.Is(err, ErrFenced) {
		t.Fatalf("old incarnation Verify err = %v, want ErrFenced", err)
	}
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(Options{}); err == nil {
		t.Fatal("empty owner accepted")
	}
	if _, err := NewManager(Options{Owner: "bad\"quote"}); err == nil {
		t.Fatal("owner with quote accepted")
	}
}
