// Package knowledge is the cross-campaign flywheel store (DESIGN.md
// §14): a per-template hit-statistics base under the shared data root
// that every campaign feeds on harvest and later campaigns consume —
// as warm-start priors for learning optimization engines (ranker,
// bayes) and as damped score boosts for the coarse-grained TAC search.
//
// The store follows the same multi-replica discipline as the campaign
// store: each replica appends only to its own CRC-framed journal
// (<root>/<owner>.journal), so writes never race across processes, and
// reads merge every replica's journal with the compacted snapshot.json
// the janitor refreshes. Entries are keyed (campaign, round, template),
// so replayed feeds — an adopted campaign re-finishing, a janitor
// re-merge — deduplicate instead of double-counting.
package knowledge

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/atomicfile"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/tac"
)

// Entry is one campaign round's harvested evidence: the weight vector
// the optimizer converged to, the coverage score it achieved, and the
// base templates the coarse-grained search built it from.
type Entry struct {
	// Campaign and Round identify the harvest; together with Template
	// they key the entry for idempotent feeding.
	Campaign string `json:"campaign"`
	Round    int    `json:"round"`
	// Unit scopes the evidence: priors never cross units.
	Unit string `json:"unit"`
	// Target describes what the campaign chased (family, cross model, or
	// event list) — informational, surfaced by GET /v1/knowledge.
	Target string `json:"target,omitempty"`
	// Template is the harvested template's name.
	Template string `json:"template"`
	// Weights is the harvested weight vector (the skeleton-space point).
	Weights []float64 `json:"weights,omitempty"`
	// Score is the mean per-target-event hit rate of the harvest's
	// standalone evaluation (the "best" phase) — hits per simulation,
	// in [0, 1] per event.
	Score float64 `json:"score"`
	// Sims is the evaluation's simulation count (the score's support).
	Sims uint64 `json:"sims"`
	// Sources are the TAC-chosen base templates the candidate merged —
	// the names the TAC flywheel boosts in later campaigns.
	Sources []string `json:"sources,omitempty"`
}

func (e Entry) key() string {
	return fmt.Sprintf("%s/%d/%s", e.Campaign, e.Round, e.Template)
}

const (
	snapshotFile = "snapshot.json"
	recType      = "knowledge_entry"
)

// DefaultDamp is the producer-side damping factor applied when past
// scores become TAC boosts: strong enough to break ties toward
// historically productive templates, weak enough that fresh in-campaign
// evidence dominates.
const DefaultDamp = 0.25

// Store is one replica's handle on the shared knowledge base. Safe for
// concurrent use within the process; cross-process safety comes from
// the own-journal-only write discipline.
type Store struct {
	dir   string
	owner string
	rec   *obs.Recorder
	log   *slog.Logger

	mu   sync.Mutex
	w    *journal.Writer
	seen map[string]bool // keys already in our own journal
}

// Open opens (or creates) the knowledge base rooted at dir, writing
// through the journal owned by owner. A torn tail left by a crash is
// truncated, like any flow journal.
func Open(dir, owner string, rec *obs.Recorder, log *slog.Logger) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:   dir,
		owner: owner,
		rec:   rec,
		log:   obs.OrNop(log),
		seen:  map[string]bool{},
	}
	path := filepath.Join(dir, owner+".journal")
	if st, err := os.Stat(path); err == nil && st.Size() > 0 {
		recs, w, err := journal.Recover(path, rec, log)
		if err != nil {
			return nil, fmt.Errorf("knowledge: recovering %s: %w", path, err)
		}
		for _, r := range recs {
			var e Entry
			if json.Unmarshal(r.Data, &e) == nil && r.Type == recType {
				s.seen[e.key()] = true
			}
		}
		s.w = w
		return s, nil
	} else if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	w, err := journal.Create(path, rec)
	if err != nil {
		return nil, fmt.Errorf("knowledge: %w", err)
	}
	s.w = w
	return s, nil
}

// Add appends entries to this replica's journal, skipping keys it
// already holds. The append is durable (fsynced) before Add returns.
func (s *Store) Add(entries []Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		if e.Campaign == "" || e.Template == "" {
			return fmt.Errorf("knowledge: entry needs campaign and template: %+v", e)
		}
		if s.seen[e.key()] {
			continue
		}
		if err := s.w.Append(recType, e); err != nil {
			return err
		}
		s.seen[e.key()] = true
		s.rec.Counter("knowledge.entries").Inc()
	}
	return nil
}

// All returns the merged fleet-wide view: the compacted snapshot plus
// every replica's journal, deduplicated by key and sorted by
// (campaign, round, template). Peer journals are read with the
// read-only torn-tail decoder — never recovered, they belong to their
// owners.
func (s *Store) All() ([]Entry, error) { return Load(s.dir) }

// Load reads the merged view of the store at dir without opening a
// journal — the read-only path for CLI consumers (tacquery) and tests.
func Load(dir string) ([]Entry, error) {
	byKey := map[string]Entry{}
	if data, err := os.ReadFile(filepath.Join(dir, snapshotFile)); err == nil {
		var snap []Entry
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("knowledge: %s: %w", snapshotFile, err)
		}
		for _, e := range snap {
			byKey[e.key()] = e
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		if f.IsDir() || !strings.HasSuffix(f.Name(), ".journal") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil || len(data) < len(journal.Magic) ||
			string(data[:len(journal.Magic)]) != journal.Magic {
			continue // mid-create or foreign; the next merge catches it
		}
		recs, _ := journal.DecodeAll(data[len(journal.Magic):])
		for _, r := range recs {
			if r.Type != recType {
				continue
			}
			var e Entry
			if json.Unmarshal(r.Data, &e) == nil {
				byKey[e.key()] = e
			}
		}
	}
	out := make([]Entry, 0, len(byKey))
	for _, e := range byKey {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Campaign != b.Campaign {
			return a.Campaign < b.Campaign
		}
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		return a.Template < b.Template
	})
	return out, nil
}

// Compact refreshes snapshot.json with the merged view. The janitor
// calls it periodically so external consumers (tacquery, dashboards)
// read one file; journals are never truncated — each entry is one small
// record per campaign round, and the owner-only write discipline stays
// trivially correct.
func (s *Store) Compact() error {
	all, err := s.All()
	if err != nil {
		return err
	}
	if len(all) == 0 {
		return nil
	}
	return atomicfile.WriteFile(filepath.Join(s.dir, snapshotFile), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(all)
	})
}

// Close closes this replica's journal. The store's files remain for
// peers and successors.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Close()
}

// Priors converts the unit's entries into optimizer warm-start points,
// best scores first, at most max (<= 0: all). Points whose dimension
// does not match a later skeleton are filtered by the engine itself.
func Priors(entries []Entry, unit string, max int) []opt.PriorPoint {
	var pts []opt.PriorPoint
	for _, e := range entries {
		if e.Unit != unit || len(e.Weights) == 0 {
			continue
		}
		pts = append(pts, opt.PriorPoint{X: e.Weights, Value: e.Score})
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].Value > pts[j].Value })
	if max > 0 && len(pts) > max {
		pts = pts[:max]
	}
	return pts
}

// BlendTAC folds boosts into a TAC ranking — each named template's
// boost is added to its measured score, then the ranking re-sorts
// (score descending, name ascending for determinism). Empty boosts
// return ranked untouched. This is the query-level counterpart of the
// flow's own in-run blending (core.Config.TACPrior).
func BlendTAC(ranked []tac.TemplateScore, boosts map[string]float64) []tac.TemplateScore {
	if len(boosts) == 0 {
		return ranked
	}
	out := append([]tac.TemplateScore(nil), ranked...)
	for i := range out {
		if b, ok := boosts[out[i].Name]; ok {
			out[i].Score += b
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TACBoosts turns the unit's entries into damped per-template score
// boosts for the coarse-grained search: every base template a past
// harvest merged gets damp times its mean achieved score. The result is
// empty (nil) when the unit has no history, which leaves TAC rankings
// untouched.
func TACBoosts(entries []Entry, unit string, damp float64) map[string]float64 {
	if damp <= 0 {
		damp = DefaultDamp
	}
	sum := map[string]float64{}
	n := map[string]int{}
	for _, e := range entries {
		if e.Unit != unit {
			continue
		}
		for _, name := range e.Sources {
			sum[name] += e.Score
			n[name]++
		}
	}
	if len(sum) == 0 {
		return nil
	}
	boosts := make(map[string]float64, len(sum))
	for name, s := range sum {
		boosts[name] = damp * s / float64(n[name])
	}
	return boosts
}
