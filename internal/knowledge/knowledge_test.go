package knowledge

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/tac"
)

func entry(campaign string, round int, unit, template string, score float64, sources ...string) Entry {
	return Entry{
		Campaign: campaign,
		Round:    round,
		Unit:     unit,
		Template: template,
		Weights:  []float64{10, 20, 30},
		Score:    score,
		Sims:     100,
		Sources:  sources,
	}
}

func openStore(t *testing.T, dir, owner string) *Store {
	t.Helper()
	s, err := Open(dir, owner, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAddDedupe: feeding the same (campaign, round, template) key twice
// — a replayed harvest — stores it once.
func TestAddDedupe(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, "r1")
	defer s.Close()

	e := entry("c000001", 0, "iounit", "c000001_r0_best", 0.5, "tplA")
	if err := s.Add([]Entry{e, e}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add([]Entry{e}); err != nil {
		t.Fatal(err)
	}
	all, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("entries = %d, want 1", len(all))
	}
	if !reflect.DeepEqual(all[0], e) {
		t.Fatalf("entry round-trip mismatch:\ngot  %+v\nwant %+v", all[0], e)
	}
}

// TestAddValidates: entries without the key fields are rejected before
// anything hits the journal.
func TestAddValidates(t *testing.T) {
	s := openStore(t, t.TempDir(), "r1")
	defer s.Close()
	if err := s.Add([]Entry{{Campaign: "c1"}}); err == nil {
		t.Fatal("entry without template accepted")
	}
	if err := s.Add([]Entry{{Template: "x"}}); err == nil {
		t.Fatal("entry without campaign accepted")
	}
}

// TestReopenSeedsSeen: a restarted replica recovers its own journal and
// keeps deduplicating — the durable analogue of TestAddDedupe.
func TestReopenSeedsSeen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, "r1")
	e := entry("c000001", 0, "iounit", "c000001_r0_best", 0.5)
	if err := s.Add([]Entry{e}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s = openStore(t, dir, "r1")
	defer s.Close()
	if err := s.Add([]Entry{e}); err != nil {
		t.Fatal(err)
	}
	all, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("entries after reopen+refeed = %d, want 1", len(all))
	}
}

// TestMultiOwnerMerge: two replicas append to their own journals; both
// see the union, and the read-only Load sees it too, sorted by
// (campaign, round, template).
func TestMultiOwnerMerge(t *testing.T) {
	dir := t.TempDir()
	s1 := openStore(t, dir, "replica-a")
	defer s1.Close()
	s2 := openStore(t, dir, "replica-b")
	defer s2.Close()

	e1 := entry("c000001", 0, "iounit", "c000001_r0_best", 0.5, "tplA")
	e2 := entry("c000002", 0, "iounit", "c000002_r0_best", 0.7, "tplB")
	shared := entry("c000003", 1, "iounit", "c000003_r1_best", 0.9)
	if err := s1.Add([]Entry{e1, shared}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Add([]Entry{e2, shared}); err != nil {
		t.Fatal(err)
	}

	want := []Entry{e1, e2, shared}
	for name, get := range map[string]func() ([]Entry, error){
		"s1.All": s1.All,
		"s2.All": s2.All,
		"Load":   func() ([]Entry, error) { return Load(dir) },
	} {
		got, err := get()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s:\ngot  %+v\nwant %+v", name, got, want)
		}
	}
}

// TestCompact: the snapshot holds the merged view and Load still
// deduplicates it against the journals it was built from.
func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, "r1")
	defer s.Close()

	// Empty store: compact is a no-op, no snapshot appears.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); !os.IsNotExist(err) {
		t.Fatalf("empty compact wrote a snapshot (stat err = %v)", err)
	}

	e1 := entry("c000001", 0, "iounit", "c000001_r0_best", 0.5)
	e2 := entry("c000002", 0, "l3cache", "c000002_r0_best", 0.7)
	if err := s.Add([]Entry{e1, e2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	var snap []Entry
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap) != 2 {
		t.Fatalf("snapshot entries = %d, want 2", len(snap))
	}

	// Snapshot + journal both hold the entries; the merge still yields 2.
	all, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all, []Entry{e1, e2}) {
		t.Fatalf("post-compact view:\ngot  %+v\nwant %+v", all, []Entry{e1, e2})
	}
}

// TestLoadSkipsForeignFiles: mid-create (empty) and non-journal files in
// the store directory are ignored rather than failing the merge.
func TestLoadSkipsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, "r1")
	defer s.Close()
	e := entry("c000001", 0, "iounit", "c000001_r0_best", 0.5)
	if err := s.Add([]Entry{e}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "mid-create.journal"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	all, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("entries = %d, want 1", len(all))
	}
}

func TestPriors(t *testing.T) {
	entries := []Entry{
		entry("c1", 0, "iounit", "a", 0.2),
		entry("c2", 0, "iounit", "b", 0.9),
		entry("c3", 0, "l3cache", "c", 0.99), // wrong unit: filtered
		entry("c4", 0, "iounit", "d", 0.5),
		{Campaign: "c5", Unit: "iounit", Template: "e", Score: 1.0}, // no weights: filtered
	}
	pts := Priors(entries, "iounit", 0)
	if len(pts) != 3 {
		t.Fatalf("priors = %d, want 3", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value > pts[i-1].Value {
			t.Fatalf("priors not sorted best-first: %v", pts)
		}
	}
	if pts[0].Value != 0.9 {
		t.Fatalf("best prior value = %v, want 0.9", pts[0].Value)
	}
	if got := Priors(entries, "iounit", 2); len(got) != 2 {
		t.Fatalf("capped priors = %d, want 2", len(got))
	}
	if got := Priors(entries, "noc", 0); got != nil {
		t.Fatalf("priors for unitless history = %v, want nil", got)
	}
}

func TestTACBoosts(t *testing.T) {
	entries := []Entry{
		entry("c1", 0, "iounit", "t1", 0.4, "tplA", "tplB"),
		entry("c2", 0, "iounit", "t2", 0.8, "tplA"),
		entry("c3", 0, "l3cache", "t3", 1.0, "tplZ"), // wrong unit
	}
	boosts := TACBoosts(entries, "iounit", 0.5)
	// tplA: 0.5 * mean(0.4, 0.8) = 0.3; tplB: 0.5 * 0.4 = 0.2.
	if len(boosts) != 2 {
		t.Fatalf("boosts = %v, want 2 templates", boosts)
	}
	if got := boosts["tplA"]; math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("tplA boost = %v, want 0.3", got)
	}
	if got := boosts["tplB"]; got != 0.2 {
		t.Fatalf("tplB boost = %v, want 0.2", got)
	}
	if got := TACBoosts(entries, "noc", 0.5); got != nil {
		t.Fatalf("boosts for unitless history = %v, want nil", got)
	}
	// damp <= 0 falls back to DefaultDamp.
	if got := TACBoosts(entries, "iounit", 0)["tplB"]; got != DefaultDamp*0.4 {
		t.Fatalf("default-damp tplB boost = %v, want %v", got, DefaultDamp*0.4)
	}
}

func TestBlendTAC(t *testing.T) {
	ranked := []tac.TemplateScore{
		{Name: "a", Score: 0.50},
		{Name: "b", Score: 0.40},
		{Name: "c", Score: 0.30},
	}
	// Nil boosts: untouched, same backing order.
	if got := BlendTAC(ranked, nil); !reflect.DeepEqual(got, ranked) {
		t.Fatalf("nil blend changed ranking: %v", got)
	}
	got := BlendTAC(ranked, map[string]float64{"c": 0.25})
	want := []string{"c", "a", "b"}
	for i, name := range want {
		if got[i].Name != name {
			t.Fatalf("blended order = %v, want %v", got, want)
		}
	}
	if got[0].Score != 0.55 {
		t.Fatalf("boosted score = %v, want 0.55", got[0].Score)
	}
	// The input slice must not be mutated.
	if ranked[2].Score != 0.30 || ranked[0].Name != "a" {
		t.Fatalf("BlendTAC mutated its input: %v", ranked)
	}
}
